//! `swag-check` — a dependency-free static analyzer enforcing the
//! workspace's correctness conventions AND the hot-path latency
//! contract, run as a CI gate alongside the invariant checkers.
//!
//! Two layers:
//!
//! **Convention lints** (`lint_repo`, rules SC01–SC05) — the
//! line-lexer rules that predate the analyzer:
//!
//! 1. **SC01 no-panic** — no `.unwrap()` / `.expect(` / `panic!` in
//!    non-test code under `crates/core`, `crates/engine`, `crates/ooo`,
//!    and the workspace `tests/` and `examples/` directories (helper
//!    code in integration tests and demo binaries panicking on bad
//!    input is exactly how latency bugs sneak into copy-pasted driver
//!    code). A site is allowed by `// check:allow <reason>` on the same
//!    line or within the three lines above; the reason is mandatory.
//! 2. **SC02 bulk-coverage** — every type overriding a `bulk_*` method
//!    in `crates/core` must be named in `tests/bulk_equivalence.rs`.
//!    Event-time facet: any `crates/ooo` type with an inherent scalar
//!    `insert` must also define `bulk_insert` and `bulk_evict`.
//! 3. **SC03 safety-comment** — every `unsafe` block or `unsafe impl`
//!    in `crates/core`, `crates/engine`, `crates/metrics`, and
//!    `crates/ooo` needs a `SAFETY:` comment on or near it.
//! 4. **SC04 no-clock** — the algorithm layer (`crates/core`,
//!    `crates/ooo`) is deterministic: no `std::time` or ambient
//!    randomness. Driver facet: `crates/engine`, `crates/stream`,
//!    `crates/slickdeque`, plus the workspace `tests/` and `examples/`
//!    directories may measure time only through the audited facades
//!    (`swag_metrics::clock::Stopwatch`, `swag-trace`) — never raw
//!    `Instant` / `SystemTime`.
//! 5. **SC05 slice-kernel-coverage** — an `impl AggregateOp` in
//!    `crates/core` specializing `fold_slice` must override both scans
//!    too, or carry `// SCALAR-OK: <reason>`.
//!
//! **Hot-path contracts** (`analyze_repo`, rules HP01–HP04) — the
//! call-graph analyzer in [`parse`] / [`graph`] / [`hotpath`] /
//! [`atomics`]: alloc-freedom (HP01), panic-freedom (HP02), and
//! blocking-freedom (HP03) proved transitively from every
//! latency-critical root, plus the atomics-ordering policy audit
//! (HP04). See DESIGN.md §13 for the rule catalog, the call-graph
//! approximations, and the waiver policy.

pub mod atomics;
pub mod graph;
pub mod hotpath;
pub mod lexer;
pub mod parse;
pub mod report;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use lexer::{has_word, lex, rust_files, Line};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    /// True when a site waiver or baseline entry covers this finding;
    /// waived findings appear in reports but do not fail the gate.
    pub waived: bool,
    /// For hot-path findings: the shortest root→site call chain of
    /// qualified fn names. For atomics findings: the module policy key.
    pub chain: Vec<String>,
}

impl Finding {
    pub fn new(file: &Path, line: usize, rule: &'static str, message: String) -> Self {
        Finding {
            file: file.to_path_buf(),
            line,
            rule,
            message,
            waived: false,
            chain: Vec::new(),
        }
    }

    /// The stable rule ID for machine consumers (`--json`). The slug in
    /// `rule` may be reworded; these IDs may not.
    pub fn id(&self) -> &'static str {
        match self.rule {
            "no-panic" => "SC01",
            "bulk-coverage" => "SC02",
            "safety-comment" => "SC03",
            "no-clock" => "SC04",
            "slice-kernel-coverage" => "SC05",
            "hot-alloc" => "HP01",
            "hot-panic" => "HP02",
            "hot-block" => "HP03",
            "atomics-ordering" => "HP04",
            _ => "SC00",
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}]{} {}",
            self.file.display(),
            self.line,
            self.id(),
            self.rule,
            if self.waived { " (waived)" } else { "" },
            self.message
        )
    }
}

/// `// check:allow <reason>` on the same line or within the three lines
/// above (rustfmt wraps method chains, so the comment may sit a couple of
/// lines before the flagged token) waives the no-panic rule. An allow
/// without a reason is itself a finding.
fn allowed(lines: &[Line], idx: usize, findings: &mut Vec<Finding>, file: &Path) -> bool {
    for k in (idx.saturating_sub(3)..=idx).rev() {
        if let Some(pos) = lines[k].comment.find("check:allow") {
            let reason = lines[k].comment[pos + "check:allow".len()..].trim();
            if reason.is_empty() {
                findings.push(Finding::new(
                    file,
                    k + 1,
                    "no-panic",
                    "check:allow needs a reason".into(),
                ));
            }
            return true;
        }
    }
    false
}

/// SC01: no `.unwrap()` / `.expect(` / `panic!` outside tests.
fn lint_no_panic(file: &Path, lines: &[Line], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in [".unwrap()", ".expect(", "panic!"] {
            if line.code.contains(token) {
                if !allowed(lines, idx, findings, file) {
                    findings.push(Finding::new(
                        file,
                        idx + 1,
                        "no-panic",
                        format!(
                            "`{token}` in non-test code; handle the error or annotate \
                             `// check:allow <reason>`"
                        ),
                    ));
                }
                break;
            }
        }
    }
}

/// SC03: `unsafe` without a nearby `SAFETY:` comment.
///
/// `unsafe fn` signatures are exempt — they state their contract in docs;
/// what needs a justification is each `unsafe` *block* (and `unsafe
/// impl`) discharging such a contract.
fn lint_safety_comments(file: &Path, lines: &[Line], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        let only_fn_signatures = line
            .code
            .split("unsafe")
            .skip(1)
            .all(|rest| rest.trim_start().starts_with("fn "));
        if only_fn_signatures {
            continue;
        }
        // Attribute/lint lines like `#![deny(unsafe_op_in_unsafe_fn)]`
        // fail has_word already; `unsafe` in code needs justification.
        let documented =
            (idx.saturating_sub(3)..=idx).any(|k| lines[k].comment.contains("SAFETY:"));
        if !documented {
            findings.push(Finding::new(
                file,
                idx + 1,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment on or above it".into(),
            ));
        }
    }
}

/// SC04: wall clocks and ambient randomness are banned from the
/// algorithm layer.
fn lint_no_clock(file: &Path, lines: &[Line], findings: &mut Vec<Finding>) {
    const BANNED: &[&str] = &[
        "std::time",
        "SystemTime",
        "Instant::now",
        "thread_rng",
        "rand::",
    ];
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in BANNED {
            if line.code.contains(token) {
                findings.push(Finding::new(
                    file,
                    idx + 1,
                    "no-clock",
                    format!(
                        "`{token}` in the algorithm layer, which is deterministic; \
                         clocks and randomness live in the driver crates"
                    ),
                ));
                break;
            }
        }
    }
}

/// SC04, driver facet: the engine/stream/CLI crates — and the workspace
/// `tests/` and `examples/` directories, which demonstrate the intended
/// idiom — measure time only through the facades in `swag-metrics`
/// (`clock::Stopwatch`, `LatencyRecorder`) and `swag-trace`. A raw
/// `Instant` or `SystemTime` there dodges the one audited clock path —
/// and `SystemTime` is additionally non-monotonic, which no latency
/// math survives.
fn lint_clock_facade(file: &Path, lines: &[Line], findings: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in ["Instant", "SystemTime"] {
            if has_word(&line.code, token) {
                findings.push(Finding::new(
                    file,
                    idx + 1,
                    "no-clock",
                    format!(
                        "`{token}` outside the clock facade: driver crates time through \
                         `swag_metrics::clock::Stopwatch` (or the swag-trace recorder), \
                         never raw std::time clocks"
                    ),
                ));
                break;
            }
        }
    }
}

/// SC02 support: the `impl … for Type` blocks in a file that override a
/// `bulk_*` method, with the method names.
fn bulk_overriders(lines: &[Line]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    // Stack of (type name, depth inside the impl block).
    let mut impls: Vec<(String, i64)> = Vec::new();
    for line in lines {
        let code = &line.code;
        let header = has_word(code, "impl") && code.contains(" for ") && code.contains('{');
        if !line.in_test {
            if let Some((ty, _)) = impls.last() {
                if let Some(pos) = code.find("fn bulk_") {
                    let rest = &code[pos + 3..];
                    let name: String = rest
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    out.push((ty.clone(), name));
                }
            }
        }
        for c in code.chars() {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if let Some((_, d)) = impls.last() {
                    if depth < *d {
                        impls.pop();
                    }
                }
            }
        }
        if header && !line.in_test {
            let after = code.rfind(" for ").map(|p| &code[p + 5..]).unwrap_or("");
            let ty: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ty.is_empty() {
                impls.push((ty, depth));
            }
        }
    }
    out
}

/// SC02: every `bulk_*` overrider must be named in the equivalence
/// suite so batched fast paths cannot ship untested.
fn lint_bulk_coverage(root: &Path, core_src: &Path, findings: &mut Vec<Finding>) {
    let suite_path = root.join("tests/bulk_equivalence.rs");
    let suite = fs::read_to_string(&suite_path).unwrap_or_default();
    if suite.is_empty() {
        findings.push(Finding::new(
            &suite_path,
            1,
            "bulk-coverage",
            "tests/bulk_equivalence.rs is missing or empty".into(),
        ));
        return;
    }
    for file in rust_files(core_src) {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        let lines = lex(&source);
        for (ty, method) in bulk_overriders(&lines) {
            if !suite.contains(&ty) {
                findings.push(Finding::new(
                    &file,
                    1,
                    "bulk-coverage",
                    format!(
                        "`{ty}` overrides `{method}` but is not exercised by \
                         tests/bulk_equivalence.rs"
                    ),
                ));
            }
        }
    }
}

/// One `impl … for Type` block's slice-kernel surface: which of the
/// batch-kernel methods it defines, and whether a `SCALAR-OK` waiver
/// covers it.
#[derive(Debug, PartialEq, Eq)]
struct KernelImplSite {
    ty: String,
    /// 1-based header line.
    line: usize,
    fold: bool,
    prefix: bool,
    suffix: bool,
    waived: bool,
}

/// SC05 support: every trait-impl block in a file, with its
/// slice-kernel overrides. Waivers count when the `SCALAR-OK` comment
/// sits anywhere inside the block or within the three lines above the
/// header.
fn kernel_impl_sites(lines: &[Line]) -> Vec<KernelImplSite> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    // Stack of (site, depth inside the impl block).
    let mut stack: Vec<(KernelImplSite, i64)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let header =
            !line.in_test && has_word(code, "impl") && code.contains(" for ") && code.contains('{');
        if !line.in_test {
            if let Some((site, _)) = stack.last_mut() {
                if code.contains("fn fold_slice") {
                    site.fold = true;
                }
                if code.contains("fn prefix_scan_into") {
                    site.prefix = true;
                }
                if code.contains("fn suffix_scan_into") {
                    site.suffix = true;
                }
                if line.comment.contains("SCALAR-OK") {
                    site.waived = true;
                }
            }
        }
        for c in code.chars() {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if let Some((_, d)) = stack.last() {
                    if depth < *d {
                        let (site, _) = stack.pop().expect("checked non-empty");
                        out.push(site);
                    }
                }
            }
        }
        if header {
            let after = code.rfind(" for ").map(|p| &code[p + 5..]).unwrap_or("");
            let ty: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ty.is_empty() {
                let waived =
                    (idx.saturating_sub(3)..=idx).any(|k| lines[k].comment.contains("SCALAR-OK"));
                stack.push((
                    KernelImplSite {
                        ty,
                        line: idx + 1,
                        fold: false,
                        prefix: false,
                        suffix: false,
                        waived,
                    },
                    depth,
                ));
            }
        }
    }
    while let Some((site, _)) = stack.pop() {
        out.push(site);
    }
    out
}

/// SC05: a specialized `fold_slice` without both scan overrides is an
/// incomplete kernel surface — the scans feed the cached per-node
/// aggregates that `strict-invariants` compares bitwise, so the fast
/// path and the checked path must specialize together.
fn lint_slice_kernel_coverage(core_src: &Path, findings: &mut Vec<Finding>) {
    for file in rust_files(core_src) {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        for site in kernel_impl_sites(&lex(&source)) {
            if site.fold && !(site.prefix && site.suffix) && !site.waived {
                findings.push(Finding::new(
                    &file,
                    site.line,
                    "slice-kernel-coverage",
                    format!(
                        "`{}` specializes `fold_slice` but not both `prefix_scan_into` and \
                         `suffix_scan_into`; override the scans too or annotate \
                         `// SCALAR-OK: <reason>`",
                        site.ty
                    ),
                ));
            }
        }
    }
}

/// The `impl TypeName {` (no ` for `) header's type name, when `code` is
/// an inherent-impl header line.
fn inherent_impl_type(code: &str) -> Option<String> {
    if !has_word(code, "impl") || code.contains(" for ") || !code.contains('{') {
        return None;
    }
    let pos = code.find("impl")?;
    let mut rest = code[pos + 4..].trim_start();
    if let Some(stripped) = rest.strip_prefix('<') {
        // Skip the generic parameter list (angle brackets nest).
        let mut depth = 1usize;
        let mut cut = None;
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(i + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = stripped[cut?..].trim_start();
    }
    let ty: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ty.is_empty()).then_some(ty)
}

/// The methods defined in a file's inherent `impl` blocks, as
/// `(type, method name)` pairs.
fn inherent_methods(lines: &[Line]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    // Stack of (type name, depth inside the impl block).
    let mut impls: Vec<(String, i64)> = Vec::new();
    for line in lines {
        let code = &line.code;
        let header_ty = if line.in_test {
            None
        } else {
            inherent_impl_type(code)
        };
        if !line.in_test && header_ty.is_none() {
            if let Some((ty, _)) = impls.last() {
                if let Some(pos) = code.find("fn ") {
                    let name: String = code[pos + 3..]
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        out.push((ty.clone(), name));
                    }
                }
            }
        }
        for c in code.chars() {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if let Some((_, d)) = impls.last() {
                    if depth < *d {
                        impls.pop();
                    }
                }
            }
        }
        if let Some(ty) = header_ty {
            impls.push((ty, depth));
        }
    }
    out
}

/// SC02, event-time facet: the aggregators in `crates/ooo` feed the
/// engine's batched ingestion path, so a type offering a scalar inherent
/// `insert` must ship `bulk_insert` and `bulk_evict` fast paths too.
fn lint_ooo_bulk_paths(ooo_src: &Path, findings: &mut Vec<Finding>) {
    for file in rust_files(ooo_src) {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        let methods = inherent_methods(&lex(&source));
        let mut types: Vec<&String> = methods.iter().map(|(ty, _)| ty).collect();
        types.sort();
        types.dedup();
        for ty in types {
            let has = |m: &str| methods.iter().any(|(t, name)| t == ty && name == m);
            if !has("insert") {
                continue;
            }
            for required in ["bulk_insert", "bulk_evict"] {
                if !has(required) {
                    findings.push(Finding::new(
                        &file,
                        1,
                        "bulk-coverage",
                        format!(
                            "`{ty}` has a scalar `insert` but no `{required}`: event-time \
                             aggregators must serve the engine's batched paths"
                        ),
                    ));
                }
            }
        }
    }
}

/// Run every convention lint (SC01–SC05) against the repository at
/// `root` and return the findings, sorted by file and line.
pub fn lint_repo(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let core_src = root.join("crates/core/src");
    let engine_src = root.join("crates/engine/src");
    let metrics_src = root.join("crates/metrics/src");
    let ooo_src = root.join("crates/ooo/src");
    let ws_tests = root.join("tests");
    let ws_examples = root.join("examples");

    for dir in [&core_src, &engine_src, &ooo_src, &ws_tests, &ws_examples] {
        for file in rust_files(dir) {
            if let Ok(source) = fs::read_to_string(&file) {
                let lines = lex(&source);
                lint_no_panic(&file, &lines, &mut findings);
            }
        }
    }
    for dir in [&core_src, &engine_src, &metrics_src, &ooo_src] {
        for file in rust_files(dir) {
            if let Ok(source) = fs::read_to_string(&file) {
                let lines = lex(&source);
                lint_safety_comments(&file, &lines, &mut findings);
            }
        }
    }
    for dir in [&core_src, &ooo_src] {
        for file in rust_files(dir) {
            if let Ok(source) = fs::read_to_string(&file) {
                let lines = lex(&source);
                lint_no_clock(&file, &lines, &mut findings);
            }
        }
    }
    let stream_src = root.join("crates/stream/src");
    let slick_src = root.join("crates/slickdeque/src");
    for dir in [
        &engine_src,
        &stream_src,
        &slick_src,
        &ws_tests,
        &ws_examples,
    ] {
        for file in rust_files(dir) {
            if let Ok(source) = fs::read_to_string(&file) {
                let lines = lex(&source);
                lint_clock_facade(&file, &lines, &mut findings);
            }
        }
    }
    lint_bulk_coverage(root, &core_src, &mut findings);
    lint_ooo_bulk_paths(&ooo_src, &mut findings);
    lint_slice_kernel_coverage(&core_src, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Everything the hot-path analyzer produced for one repository.
pub struct Analysis {
    /// HP01–HP04 findings, waived ones included and flagged.
    pub findings: Vec<Finding>,
    /// Malformed or reason-less baseline entries, plus stale entries
    /// that matched no finding. Non-empty fails `--gate` with exit 2.
    pub baseline_errors: Vec<String>,
    pub hot_roots: Vec<String>,
    pub reachable_fns: usize,
}

/// The source directories whose `fn` items enter the call graph: the
/// production crates. `crates/bench` (the harness measures, it is not
/// measured) and `crates/check` (this analyzer) are excluded.
const GRAPH_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/engine/src",
    "crates/metrics/src",
    "crates/ooo/src",
    "crates/server/src",
    "crates/slickdeque/src",
    "crates/stream/src",
    "crates/trace/src",
    "crates/data/src",
    "crates/plan/src",
];

/// Run the hot-path analyzer (HP01–HP04) against the repository at
/// `root`: parse, build the call graph, prove the three freedoms from
/// every hot root, audit the atomics orderings, and apply the baseline.
pub fn analyze_repo(root: &Path) -> Analysis {
    let (baseline, mut baseline_errors) = hotpath::load_baseline(root);

    let mut items = Vec::new();
    for dir in GRAPH_DIRS {
        for file in rust_files(&root.join(dir)) {
            if let Ok(source) = fs::read_to_string(&file) {
                items.extend(parse::parse_file(&file, &source));
            }
        }
    }
    let graph = graph::CallGraph::build(&items);
    let hot = hotpath::check_hot_paths(&graph, &baseline);
    let mut findings = hot.findings;
    findings.extend(atomics::audit_atomics(root, &baseline));

    for e in &baseline {
        if !e.used.get() {
            baseline_errors.push(format!(
                "stale baseline entry (no matching finding): `{} {}` — remove it",
                e.id, e.key
            ));
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Analysis {
        findings,
        baseline_errors,
        hot_roots: hot.roots,
        reachable_fns: hot.reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_strings_and_comments() {
        let src = "let x = \"panic!(\\\"no\\\")\"; // panic! here is comment\nlet y = 1;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].comment.contains("panic!"));
        assert_eq!(lines[1].code.trim(), "let y = 1;");
    }

    #[test]
    fn lexer_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"has .unwrap() inside\"#;\nfn f<'a>(x: &'a str) -> char { 'x' }\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[1].code.contains("<'a>"));
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() { y.unwrap(); }\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
        let mut findings = Vec::new();
        lint_no_panic(Path::new("x.rs"), &lines, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn test_fn_bodies_in_integration_tests_are_skipped() {
        // No #[cfg(test)] wrapper, as in workspace tests/ files: the
        // #[test] fn body is exempt, the helper between tests is not.
        let src = "#[test]\nfn a() {\n    x.unwrap();\n}\nfn helper() { y.unwrap(); }\n#[test]\nfn b() { z.unwrap(); }\n";
        let lines = lex(src);
        let mut findings = Vec::new();
        lint_no_panic(Path::new("tests/x.rs"), &lines, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn check_allow_waives_with_reason_only() {
        let src = "// check:allow startup config is validated\nlet a = x.unwrap();\n// check:allow\nlet b = y.unwrap();\n";
        let lines = lex(src);
        let mut findings = Vec::new();
        lint_no_panic(Path::new("x.rs"), &lines, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("needs a reason"));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let src = "unsafe { go() }\n// SAFETY: checked above\nunsafe { ok() }\n#![deny(unsafe_op_in_unsafe_fn)]\n";
        let lines = lex(src);
        let mut findings = Vec::new();
        lint_safety_comments(Path::new("x.rs"), &lines, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn inherent_impls_and_methods_are_extracted() {
        let src = "impl<O: AggregateOp> FingerBTree<O> {\n    pub fn insert(&mut self, ts: u64) {}\n    pub fn bulk_insert(&mut self, b: &[u64]) {}\n}\nimpl Clone for FingerBTree<O> {\n    fn clone(&self) -> Self { todo() }\n}\n";
        let lines = lex(src);
        assert_eq!(
            inherent_impl_type(&lines[0].code).as_deref(),
            Some("FingerBTree")
        );
        assert_eq!(
            inherent_impl_type(&lines[4].code),
            None,
            "trait impls are not inherent"
        );
        let got = inherent_methods(&lines);
        assert_eq!(
            got,
            vec![
                ("FingerBTree".to_string(), "insert".to_string()),
                ("FingerBTree".to_string(), "bulk_insert".to_string()),
            ]
        );
    }

    #[test]
    fn kernel_impl_sites_track_overrides_and_waivers() {
        let src = "impl AggregateOp for Fast {\n    fn fold_slice(&self) {}\n    fn prefix_scan_into(&self) {}\n    fn suffix_scan_into(&self) {}\n}\nimpl AggregateOp for Lopsided {\n    fn fold_slice(&self) {}\n}\n// SCALAR-OK: scans are cold here\nimpl AggregateOp for Waived {\n    fn fold_slice(&self) {}\n}\nimpl AggregateOp for InnerWaived {\n    // SCALAR-OK: dominance makes scans dead code\n    fn fold_slice(&self) {}\n}\n";
        let sites = kernel_impl_sites(&lex(src));
        assert_eq!(sites.len(), 4, "{sites:#?}");
        let get = |ty: &str| sites.iter().find(|s| s.ty == ty).unwrap();
        let fast = get("Fast");
        assert!(fast.fold && fast.prefix && fast.suffix && !fast.waived);
        let lop = get("Lopsided");
        assert!(lop.fold && !lop.prefix && !lop.suffix && !lop.waived);
        assert!(get("Waived").waived, "comment above the header waives");
        assert!(get("InnerWaived").waived, "comment inside the block waives");

        let mut findings = Vec::new();
        let dir = std::env::temp_dir().join("swag-check-kernel-lint-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ops.rs"), src).unwrap();
        lint_slice_kernel_coverage(&dir, &mut findings);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].rule, "slice-kernel-coverage");
        assert!(findings[0].message.contains("`Lopsided`"));
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn bulk_overriders_are_extracted() {
        let src = "impl<O: AggregateOp> FinalAggregator<O> for Shiny<O> {\n    fn bulk_insert(&mut self, b: &[O::Partial]) {}\n}\npub trait T {\n    fn bulk_evict(&mut self, n: usize) {}\n}\n";
        let lines = lex(src);
        let got = bulk_overriders(&lines);
        assert_eq!(got, vec![("Shiny".to_string(), "bulk_insert".to_string())]);
    }

    #[test]
    fn rule_ids_are_stable() {
        for (rule, id) in [
            ("no-panic", "SC01"),
            ("bulk-coverage", "SC02"),
            ("safety-comment", "SC03"),
            ("no-clock", "SC04"),
            ("slice-kernel-coverage", "SC05"),
            ("hot-alloc", "HP01"),
            ("hot-panic", "HP02"),
            ("hot-block", "HP03"),
            ("atomics-ordering", "HP04"),
        ] {
            assert_eq!(
                Finding::new(Path::new("x.rs"), 1, rule, String::new()).id(),
                id
            );
        }
    }
}
