//! Integration tests: the real workspace must be clean, and the seeded
//! negative fixtures must trip every rule — proving the gate can fail.

use std::collections::BTreeSet;
use std::path::PathBuf;

use swag_check::{analyze_repo, lint_repo};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn workspace_is_clean() {
    let findings = lint_repo(&workspace_root());
    assert!(
        findings.is_empty(),
        "swag-check found violations in the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn negative_fixture_trips_every_rule() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/badrepo");
    let findings = lint_repo(&fixture);
    let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        BTreeSet::from([
            "no-panic",
            "bulk-coverage",
            "safety-comment",
            "no-clock",
            "slice-kernel-coverage",
        ]),
        "findings: {findings:#?}"
    );

    let messages: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    let has = |needle: &str| messages.iter().any(|m| m.contains(needle));
    // The specific seeded violations, one per rule facet:
    assert!(has("`.unwrap()` in non-test code"), "{messages:#?}");
    assert!(has("`panic!` in non-test code"), "{messages:#?}");
    assert!(has("`.expect(` in non-test code"), "{messages:#?}");
    assert!(has("check:allow needs a reason"), "{messages:#?}");
    assert!(has("`Shiny` overrides `bulk_insert`"), "{messages:#?}");
    // Slice-kernel facet: fold specialized without both scans fires …
    assert!(has("`Lopsided` specializes `fold_slice`"), "{messages:#?}");
    // … but the SCALAR-OK-waived impl stays clean.
    assert!(!has("`WaivedScalar`"), "{messages:#?}");
    // Event-time facet: a scalar insert without batched counterparts.
    assert!(
        has("`LonelyTree` has a scalar `insert` but no `bulk_insert`"),
        "{messages:#?}"
    );
    assert!(
        has("`LonelyTree` has a scalar `insert` but no `bulk_evict`"),
        "{messages:#?}"
    );
    assert!(has("without a `// SAFETY:` comment"), "{messages:#?}");
    assert!(has("`std::time`"), "{messages:#?}");
    // Facade facet: driver crates may not read clocks directly.
    assert!(has("`Instant` outside the clock facade"), "{messages:#?}");
    assert!(
        has("`SystemTime` outside the clock facade"),
        "{messages:#?}"
    );

    // The clean parts of the fixture must NOT be flagged.
    let core_lib = fixture.join("crates/core/src/lib.rs");
    let core_findings: Vec<_> = findings.iter().filter(|f| f.file == core_lib).collect();
    // Reason-waived unwrap (line 33), string literal (line 37) and the
    // test-module unwrap (line 44) produce no findings at those lines.
    for clean_line in [33usize, 37, 44] {
        assert!(
            core_findings.iter().all(|f| f.line != clean_line),
            "line {clean_line} wrongly flagged: {core_findings:#?}"
        );
    }
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "safety-comment" && f.line == 6),
        "undocumented unsafe at engine lib line 6: {findings:#?}"
    );
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "safety-comment" && f.line == 15),
        "documented unsafe wrongly flagged: {findings:#?}"
    );

    // The facade facet skips test modules: the fixture's in-test
    // Instant::now() (stream lib line 24) must not be flagged.
    let stream_lib = fixture.join("crates/stream/src/lib.rs");
    assert!(
        findings
            .iter()
            .filter(|f| f.file == stream_lib)
            .all(|f| f.line < 20),
        "test-module clock read wrongly flagged: {findings:#?}"
    );
}

#[test]
fn workspace_hot_paths_are_contract_clean() {
    let analysis = analyze_repo(&workspace_root());
    let unwaived: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| f.to_string())
        .collect();
    assert!(
        unwaived.is_empty(),
        "unwaived hot-path findings in the workspace:\n{}",
        unwaived.join("\n")
    );
    assert!(
        analysis.baseline_errors.is_empty(),
        "baseline hygiene errors: {:#?}",
        analysis.baseline_errors
    );
    // Sanity: the root set and reach are real, not an empty no-op scan.
    assert!(
        analysis.hot_roots.len() > 100,
        "suspiciously few hot roots: {}",
        analysis.hot_roots.len()
    );
    assert!(
        analysis.reachable_fns > analysis.hot_roots.len(),
        "reach must extend beyond the roots themselves"
    );
}

#[test]
fn hot_fixture_trips_every_analyzer_rule() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/hot");
    let a = analyze_repo(&fixture);
    let unwaived_ids: BTreeSet<&str> = a
        .findings
        .iter()
        .filter(|f| !f.waived)
        .map(|f| f.id())
        .collect();
    for id in ["HP01", "HP02", "HP03", "HP04"] {
        assert!(
            unwaived_ids.contains(id),
            "rule {id} did not fire on the fixture: {:#?}",
            a.findings
        );
    }

    let msgs: Vec<String> = a.findings.iter().map(|f| f.to_string()).collect();
    let has = |needle: &str| msgs.iter().any(|m| m.contains(needle));
    // Transitive findings carry the root -> offender chain.
    assert!(
        a.findings.iter().any(|f| {
            f.id() == "HP01"
                && f.chain.iter().any(|c| c.contains("Leaky::slide"))
                && f.chain.iter().any(|c| c.contains("Leaky::grow"))
        }),
        "transitive alloc chain missing: {:#?}",
        a.findings
    );
    assert!(
        a.findings
            .iter()
            .any(|f| { f.id() == "HP03" && f.chain.iter().any(|c| c.contains("Leaky::stall")) }),
        "transitive blocking finding missing: {:#?}",
        a.findings
    );
    // The reasoned `// alloc:amortized` site is recorded but waived…
    assert!(
        a.findings
            .iter()
            .any(|f| f.id() == "HP01" && f.waived && f.message.contains(".to_vec(")),
        "waived alloc control missing: {:#?}",
        a.findings
    );
    // …the reason-less one is itself a finding.
    assert!(has("alloc:amortized needs a reason"), "{msgs:#?}");
    // HP04 fires both ways: policy violation and undeclared module.
    assert!(has("violates the declared policy"), "{msgs:#?}");
    assert!(has("no declared ordering policy"), "{msgs:#?}");
    // Baseline plumbing: the valid entry waives, hygiene flags the rest.
    assert!(
        a.findings
            .iter()
            .any(|f| f.id() == "HP03" && f.waived && f.message.contains("thread::sleep")),
        "baseline-waived blocking site missing: {:#?}",
        a.findings
    );
    assert!(
        a.baseline_errors.iter().any(|e| e.contains("stale")),
        "{:#?}",
        a.baseline_errors
    );
    assert!(
        a.baseline_errors
            .iter()
            .any(|e| e.contains("malformed-line-without-fields")),
        "{:#?}",
        a.baseline_errors
    );
    assert!(
        a.baseline_errors
            .iter()
            .any(|e| e.contains("core::Leaky::evict")),
        "reason-less baseline entry must be a hygiene error: {:#?}",
        a.baseline_errors
    );
}

#[test]
fn examples_and_test_helpers_are_in_scope() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/badrepo");
    let findings = lint_repo(&fixture);

    // Workspace examples are scanned for both facets.
    let example = fixture.join("examples/bad_example.rs");
    let ex: Vec<_> = findings.iter().filter(|f| f.file == example).collect();
    assert!(
        ex.iter().any(|f| f.rule == "no-panic" && f.line == 10),
        "unwrap in an example must be flagged: {ex:#?}"
    );
    assert!(
        ex.iter()
            .any(|f| f.rule == "no-clock" && f.to_string().contains("Instant")),
        "raw Instant in an example must be flagged: {ex:#?}"
    );
    // The reason-waived unwrap (line 12) stays clean.
    assert!(
        ex.iter().all(|f| f.line != 12),
        "waived example line wrongly flagged: {ex:#?}"
    );

    // Test-file helpers outside #[test] items are scanned; test bodies
    // stay exempt.
    let tests_file = fixture.join("tests/bulk_equivalence.rs");
    let tf: Vec<_> = findings.iter().filter(|f| f.file == tests_file).collect();
    assert!(
        tf.iter().any(|f| f.rule == "no-panic" && f.line == 7),
        "helper .expect( outside #[test] must be flagged: {tf:#?}"
    );
    assert!(
        tf.iter().all(|f| f.line != 12),
        "in-test unwrap wrongly flagged: {tf:#?}"
    );
}

fn temp_repo(files: &[(&str, &str)]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "swag-check-lint-{:x}",
        files
            .iter()
            .map(|(p, s)| p.len() * 31 + s.len())
            .sum::<usize>()
    ));
    std::fs::remove_dir_all(&dir).ok();
    for (path, src) in files {
        let full = dir.join(path);
        std::fs::create_dir_all(full.parent().unwrap()).unwrap();
        std::fs::write(full, src).unwrap();
    }
    dir
}

#[test]
fn waiver_survives_attribute_lines_between_comment_and_site() {
    let dir = temp_repo(&[(
        "crates/core/src/lib.rs",
        "// check:allow construction is validated by the caller\n\
         #[inline]\n\
         #[must_use]\n\
         pub fn waived(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    let findings = lint_repo(&dir);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        findings.iter().all(|f| f.rule != "no-panic"),
        "waiver 3 lines above the site must hold across attributes: {findings:#?}"
    );
}

#[test]
fn empty_waiver_reason_is_rejected() {
    let dir = temp_repo(&[(
        "crates/core/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    // check:allow\n    x.unwrap()\n}\n",
    )]);
    let findings = lint_repo(&dir);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        findings
            .iter()
            .any(|f| f.to_string().contains("check:allow needs a reason")),
        "{findings:#?}"
    );
}

#[test]
fn waiver_inside_a_string_literal_is_ignored() {
    let dir = temp_repo(&[(
        "crates/core/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    let _s = \"check:allow not a waiver\";\n    x.unwrap()\n}\n",
    )]);
    let findings = lint_repo(&dir);
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        findings.iter().any(|f| f.rule == "no-panic" && f.line == 3),
        "unwrap must still be flagged when check:allow only appears in a string: {findings:#?}"
    );
}
