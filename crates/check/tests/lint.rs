//! Integration tests: the real workspace must be clean, and the seeded
//! negative fixture must trip every rule — proving the gate can fail.

use std::collections::BTreeSet;
use std::path::PathBuf;

use swag_check::lint_repo;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn workspace_is_clean() {
    let findings = lint_repo(&workspace_root());
    assert!(
        findings.is_empty(),
        "swag-check found violations in the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn negative_fixture_trips_every_rule() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/badrepo");
    let findings = lint_repo(&fixture);
    let rules: BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        BTreeSet::from([
            "no-panic",
            "bulk-coverage",
            "safety-comment",
            "no-clock",
            "slice-kernel-coverage",
        ]),
        "findings: {findings:#?}"
    );

    let messages: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    let has = |needle: &str| messages.iter().any(|m| m.contains(needle));
    // The specific seeded violations, one per rule facet:
    assert!(has("`.unwrap()` in non-test code"), "{messages:#?}");
    assert!(has("`panic!` in non-test code"), "{messages:#?}");
    assert!(has("`.expect(` in non-test code"), "{messages:#?}");
    assert!(has("check:allow needs a reason"), "{messages:#?}");
    assert!(has("`Shiny` overrides `bulk_insert`"), "{messages:#?}");
    // Slice-kernel facet: fold specialized without both scans fires …
    assert!(has("`Lopsided` specializes `fold_slice`"), "{messages:#?}");
    // … but the SCALAR-OK-waived impl stays clean.
    assert!(!has("`WaivedScalar`"), "{messages:#?}");
    // Event-time facet: a scalar insert without batched counterparts.
    assert!(
        has("`LonelyTree` has a scalar `insert` but no `bulk_insert`"),
        "{messages:#?}"
    );
    assert!(
        has("`LonelyTree` has a scalar `insert` but no `bulk_evict`"),
        "{messages:#?}"
    );
    assert!(has("without a `// SAFETY:` comment"), "{messages:#?}");
    assert!(has("`std::time`"), "{messages:#?}");
    // Facade facet: driver crates may not read clocks directly.
    assert!(has("`Instant` outside the clock facade"), "{messages:#?}");
    assert!(
        has("`SystemTime` outside the clock facade"),
        "{messages:#?}"
    );

    // The clean parts of the fixture must NOT be flagged.
    let core_lib = fixture.join("crates/core/src/lib.rs");
    let core_findings: Vec<_> = findings.iter().filter(|f| f.file == core_lib).collect();
    // Reason-waived unwrap (line 33), string literal (line 37) and the
    // test-module unwrap (line 44) produce no findings at those lines.
    for clean_line in [33usize, 37, 44] {
        assert!(
            core_findings.iter().all(|f| f.line != clean_line),
            "line {clean_line} wrongly flagged: {core_findings:#?}"
        );
    }
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "safety-comment" && f.line == 6),
        "undocumented unsafe at engine lib line 6: {findings:#?}"
    );
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "safety-comment" && f.line == 15),
        "documented unsafe wrongly flagged: {findings:#?}"
    );

    // The facade facet skips test modules: the fixture's in-test
    // Instant::now() (stream lib line 24) must not be flagged.
    let stream_lib = fixture.join("crates/stream/src/lib.rs");
    assert!(
        findings
            .iter()
            .filter(|f| f.file == stream_lib)
            .all(|f| f.line < 20),
        "test-module clock read wrongly flagged: {findings:#?}"
    );
}
