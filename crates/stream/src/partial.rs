//! The partial aggregator (paper §2.1): folds runs of raw tuples into the
//! partial aggregates the final aggregators consume, following a shared
//! plan's fragment lengths.

use crate::source::Source;
use swag_core::ops::AggregateOp;

/// Folds `length` tuples from a source into one partial aggregate.
#[derive(Debug, Clone)]
pub struct PartialAggregator<O: AggregateOp> {
    op: O,
}

impl<O: AggregateOp<Input = f64>> PartialAggregator<O> {
    /// Create a partial aggregator for `op`.
    pub fn new(op: O) -> Self {
        PartialAggregator { op }
    }

    /// The operation in use.
    pub fn op(&self) -> &O {
        &self.op
    }

    /// Aggregate the next `length` tuples (the paper's
    /// `partialAggregator.aggregate(length, PAT)`). Returns `None` if the
    /// source is exhausted before the fragment completes.
    pub fn aggregate<S: Source + ?Sized>(&self, source: &mut S, length: u64) -> Option<O::Partial> {
        assert!(length >= 1, "fragments span at least one tuple");
        let first = source.next_value()?;
        let mut acc = self.op.lift(&first);
        for _ in 1..length {
            let v = source.next_value()?;
            acc = self.op.combine(&acc, &self.op.lift(&v));
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use swag_core::ops::{Max, Sum};

    #[test]
    fn sums_fragments() {
        let pa = PartialAggregator::new(Sum::<f64>::new());
        let mut src = VecSource::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(pa.aggregate(&mut src, 2), Some(3.0));
        assert_eq!(pa.aggregate(&mut src, 3), Some(12.0));
        assert_eq!(pa.aggregate(&mut src, 1), None);
    }

    #[test]
    fn partial_fragment_at_end_is_discarded() {
        let pa = PartialAggregator::new(Sum::<f64>::new());
        let mut src = VecSource::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(pa.aggregate(&mut src, 2), Some(3.0));
        // Only one tuple left but two requested: incomplete fragment.
        assert_eq!(pa.aggregate(&mut src, 2), None);
    }

    #[test]
    fn max_fragments() {
        let pa = PartialAggregator::new(Max::<f64>::new());
        let mut src = VecSource::new(vec![1.0, 9.0, 3.0, 4.0]);
        assert_eq!(pa.aggregate(&mut src, 3), Some(Some(9.0)));
        assert_eq!(pa.aggregate(&mut src, 1), Some(Some(4.0)));
    }
}
