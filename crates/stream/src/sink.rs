//! Result sinks: where query answers go.

/// Receives one answer per (query, report) pair.
pub trait Sink<T> {
    /// Deliver `answer` for the query at plan index `query_idx`.
    fn deliver(&mut self, query_idx: usize, answer: T);
}

/// Collects every delivered answer, tagged with its query index.
#[derive(Debug, Clone, Default)]
pub struct CollectSink<T> {
    /// The delivered `(query_idx, answer)` pairs in delivery order.
    pub answers: Vec<(usize, T)>,
}

impl<T> CollectSink<T> {
    /// Create an empty collector.
    pub fn new() -> Self {
        CollectSink {
            answers: Vec::new(),
        }
    }

    /// Answers delivered for one query, in order.
    pub fn for_query(&self, query_idx: usize) -> Vec<&T> {
        self.answers
            .iter()
            .filter(|(q, _)| *q == query_idx)
            .map(|(_, a)| a)
            .collect()
    }
}

impl<T> Sink<T> for CollectSink<T> {
    fn deliver(&mut self, query_idx: usize, answer: T) {
        self.answers.push((query_idx, answer)); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
    }
}

/// Counts deliveries without retaining them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    /// Number of answers delivered.
    pub count: u64,
}

impl<T> Sink<T> for CountSink {
    fn deliver(&mut self, _query_idx: usize, _answer: T) {
        self.count += 1;
    }
}

/// Discards answers (throughput benchmarking against a black hole — the
/// caller must keep the computation observable some other way).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl<T> Sink<T> for NullSink {
    fn deliver(&mut self, _query_idx: usize, _answer: T) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_groups_by_query() {
        let mut s = CollectSink::new();
        s.deliver(0, 1.0);
        s.deliver(1, 2.0);
        s.deliver(0, 3.0);
        assert_eq!(s.answers.len(), 3);
        assert_eq!(s.for_query(0), vec![&1.0, &3.0]);
        assert_eq!(s.for_query(1), vec![&2.0]);
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        for i in 0..5 {
            s.deliver(0, i);
        }
        assert_eq!(s.count, 5);
    }
}
