//! Event-time windows with watermark-driven emission.
//!
//! The count-based executors in this crate answer "the last `n` tuples"
//! on every slide; [`TimeWindowExec`] instead answers aligned **time**
//! windows `[k·slide, k·slide + range)` over event timestamps, emitting a
//! window's answer exactly once — when the watermark passes its end, i.e.
//! when no in-flight tuple can still land inside it. Tuples may arrive in
//! any order; the [`FingerBTree`] underneath absorbs the disorder, and a
//! tuple older than the current watermark is refused (the caller counts
//! it as late).
//!
//! Emission is **watermark-deterministic**: which answers come out of
//! which `advance_watermark` call depends on the watermark values fed in,
//! but the full answer *sequence* — `(query, window end, value)` triples
//! in window order — depends only on the accepted tuple set. Feeding the
//! same tuples through different batchings or shardings yields the same
//! answers.

use swag_core::ops::AggregateOp;
use swag_ooo::{FingerBTree, Timestamp};

/// One aligned time window: `range` wide, advancing by `slide`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindowSpec {
    /// Window width in event-time units.
    pub range: u64,
    /// Distance between consecutive window starts.
    pub slide: u64,
}

impl TimeWindowSpec {
    /// A `range`-wide window sliding by `slide`; both must be ≥ 1.
    pub fn new(range: u64, slide: u64) -> Self {
        assert!(range >= 1, "window range must be at least 1");
        assert!(slide >= 1, "window slide must be at least 1");
        TimeWindowSpec { range, slide }
    }

    /// A tumbling window: slide = range.
    pub fn tumbling(range: u64) -> Self {
        Self::new(range, range)
    }
}

/// One emitted answer: `(query index, window end, lowered value)`.
pub type TimeAnswer<T> = (usize, Timestamp, T);

/// Shared-tree executor for one or more time windows over a single
/// out-of-order stream (the event-time sibling of the shared-plan
/// multi-query executors).
#[derive(Debug)]
pub struct TimeWindowExec<O: AggregateOp> {
    tree: FingerBTree<O>,
    specs: Vec<TimeWindowSpec>,
    /// Per-spec end of the next window to emit; `None` until the first
    /// tuple fixes where emission starts (windows from before a stream's
    /// first event are skipped rather than emitted empty).
    next_end: Vec<Option<Timestamp>>,
    watermark: Timestamp,
    accepted: u64,
}

impl<O: AggregateOp> TimeWindowExec<O> {
    /// An executor answering `specs` with `op` over a shared tree.
    pub fn new(op: O, specs: Vec<TimeWindowSpec>) -> Self {
        assert!(!specs.is_empty(), "need at least one time window");
        let next_end = vec![None; specs.len()];
        TimeWindowExec {
            tree: FingerBTree::new(op),
            specs,
            next_end,
            watermark: 0,
            accepted: 0,
        }
    }

    /// The window specs being answered, in query order.
    pub fn specs(&self) -> &[TimeWindowSpec] {
        &self.specs
    }

    /// The watermark last passed to
    /// [`advance_watermark`](Self::advance_watermark).
    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Tuples accepted so far (late refusals excluded).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Live tuples currently held in the tree.
    pub fn live(&self) -> usize {
        self.tree.len()
    }

    /// Largest live event timestamp, or `None` when the tree is empty.
    /// (Accepted-then-evicted tuples no longer count — this is the live
    /// window's frontier, which is what watermark-lag reporting needs.)
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.tree.max_ts()
    }

    /// Offer one tuple at event time `ts`. Returns `false` — and leaves
    /// all state untouched — when `ts` is below the watermark: the
    /// windows it belongs to may already be emitted. Callers count those
    /// as late drops.
    pub fn insert(&mut self, ts: Timestamp, value: &O::Input) -> bool {
        if ts < self.watermark {
            return false;
        }
        self.prime_next_end(ts);
        self.tree.insert_value(ts, value);
        self.accepted += 1;
        true
    }

    /// Offer a batch; returns how many were accepted (the rest were
    /// late). Rides the tree's bulk path when the batch is in order.
    pub fn bulk_insert(&mut self, batch: &[(Timestamp, O::Partial)]) -> usize {
        let wm = self.watermark;
        let mut accepted = 0usize;
        let mut pending: Vec<(Timestamp, O::Partial)> = Vec::with_capacity(batch.len());
        for (ts, p) in batch {
            if *ts >= wm {
                self.prime_next_end(*ts);
                pending.push((*ts, p.clone()));
                accepted += 1;
            }
        }
        self.tree.bulk_insert(&pending);
        self.accepted += accepted as u64;
        accepted
    }

    /// Start (or pull back) every query at the earliest aligned window
    /// that can still receive this tuple: the smallest end
    /// `k·slide + range > ts`. Taking the minimum over accepted tuples —
    /// not just the first arrival — keeps the emitted window set
    /// order-insensitive: the candidate end is always above the
    /// watermark, so an already-emitted window can never be re-opened,
    /// and after any emission the candidate is at or past the frontier
    /// (both live on the same aligned progression).
    fn prime_next_end(&mut self, ts: Timestamp) {
        for (spec, next) in self.specs.iter().zip(self.next_end.iter_mut()) {
            let k = if ts < spec.range {
                0
            } else {
                (ts - spec.range) / spec.slide + 1
            };
            let candidate = k * spec.slide + spec.range;
            *next = Some(next.map_or(candidate, |e| e.min(candidate)));
        }
    }

    /// Raise the watermark to `wm` and emit every window whose end it
    /// passed, oldest first (queries interleaved in window-end order,
    /// ties by query index). Entries no longer reachable by any future
    /// window are evicted. A watermark below the current one is a no-op
    /// — watermarks only move forward.
    pub fn advance_watermark(&mut self, wm: Timestamp) -> Vec<TimeAnswer<O::Output>> {
        if wm <= self.watermark {
            return Vec::new();
        }
        self.watermark = wm;
        let out = self.emit_due(|_| wm);
        self.evict_unreachable();
        out
    }

    /// Close the stream: emit every remaining window up to (and
    /// including) the last one containing a live tuple — per query, so a
    /// short-range query next to a long-range one does not trail off into
    /// empty windows. Returns nothing if no tuple arrived since the last
    /// emission.
    pub fn finish(&mut self) -> Vec<TimeAnswer<O::Output>> {
        let Some(max) = self.tree.max_ts() else {
            return Vec::new();
        };
        // Per query: the end of the last aligned window containing `max`.
        let last_end: Vec<Timestamp> = self
            .specs
            .iter()
            .map(|s| (max / s.slide) * s.slide + s.range)
            .collect();
        let out = self.emit_due(|q| last_end[q]);
        for &le in &last_end {
            self.watermark = self.watermark.max(le);
        }
        self.evict_unreachable();
        out
    }

    /// Emit every due window, oldest end first (ties by query index),
    /// where query `q` is due while its next end ≤ `bound(q)`.
    fn emit_due(&mut self, bound: impl Fn(usize) -> Timestamp) -> Vec<TimeAnswer<O::Output>> {
        let mut out = Vec::new();
        loop {
            let due = self
                .next_end
                .iter()
                .enumerate()
                .filter_map(|(q, e)| e.map(|end| (end, q)))
                .filter(|&(end, q)| end <= bound(q))
                .min();
            let Some((end, q)) = due else { break };
            let spec = self.specs[q];
            let part = self.tree.query_range(end - spec.range, end);
            out.push((q, end, self.tree.op().lower(&part)));
            self.next_end[q] = Some(end + spec.slide);
        }
        out
    }

    /// Validate the underlying tree's structural invariants (see
    /// [`FingerBTree::check_invariants`]).
    pub fn check_invariants(&mut self) -> Result<(), swag_core::InvariantViolation> {
        self.tree.check_invariants()
    }

    /// Drop entries below every query's next window start — no future
    /// window `[next_end - range + j·slide, …)` can reach them.
    fn evict_unreachable(&mut self) {
        let cutoff = self
            .next_end
            .iter()
            .zip(self.specs.iter())
            .filter_map(|(e, s)| e.map(|end| end - s.range))
            .min();
        if let Some(cutoff) = cutoff {
            self.tree.evict_older_than(cutoff);
        }
    }
}

impl<O: AggregateOp> TimeWindowExec<O> {
    /// Capture the executor's full state: watermark, accepted count, the
    /// window specs with their per-spec emission cursors, and the tree's
    /// live entries in timestamp order.
    pub fn save_state(&self, w: &mut swag_core::state::StateWriter<O::Partial>) {
        w.word(self.watermark);
        w.word(self.accepted);
        w.usize_word(self.specs.len());
        for s in &self.specs {
            w.word(s.range);
            w.word(s.slide);
        }
        for ne in &self.next_end {
            match ne {
                Some(end) => {
                    w.word(1);
                    w.word(*end);
                }
                None => {
                    w.word(0);
                    w.word(0);
                }
            }
        }
        let entries = self.tree.entries();
        w.usize_word(entries.len());
        for (ts, p) in entries {
            w.word(ts);
            w.partial(p);
        }
    }

    /// Rebuild an executor from a capture. The specs come from the
    /// capture itself (the creation-time list is part of the state), and
    /// the tree is rebuilt from its entries via the bulk in-order path —
    /// see [`FingerBTree::from_entries`] for the bitwise caveat on
    /// non-exact floating-point streams.
    pub fn load_state(
        op: O,
        r: &mut swag_core::state::StateReader<'_, O::Partial>,
    ) -> Result<Self, swag_core::state::StateError> {
        use swag_core::state::corrupt;
        let watermark = r.word("time-window watermark")?;
        let accepted = r.word("time-window accepted")?;
        let nspecs = r.usize_word("time-window spec count")?;
        if nspecs == 0 {
            return Err(corrupt("time-window: no specs"));
        }
        let mut specs = Vec::with_capacity(nspecs);
        for _ in 0..nspecs {
            let range = r.word("time-window spec range")?;
            let slide = r.word("time-window spec slide")?;
            if range == 0 || slide == 0 {
                return Err(corrupt(format!(
                    "time-window: spec {range}x{slide} has a zero dimension"
                )));
            }
            specs.push(TimeWindowSpec { range, slide });
        }
        let mut next_end = Vec::with_capacity(nspecs);
        for _ in 0..nspecs {
            let flag = r.word("time-window next_end flag")?;
            let end = r.word("time-window next_end value")?;
            next_end.push(match flag {
                0 => None,
                1 => Some(end),
                other => {
                    return Err(corrupt(format!(
                        "time-window: next_end flag {other} is not 0/1"
                    )))
                }
            });
        }
        let nentries = r.usize_word("time-window entry count")?;
        let mut entries = Vec::with_capacity(nentries);
        let mut prev: Option<Timestamp> = None;
        for _ in 0..nentries {
            let ts = r.word("time-window entry ts")?;
            let p = r.partial("time-window entry value")?;
            if prev.is_some_and(|t| ts < t) {
                return Err(corrupt(format!(
                    "time-window: entry timestamp {ts} out of order"
                )));
            }
            prev = Some(ts);
            entries.push((ts, p));
        }
        Ok(TimeWindowExec {
            tree: FingerBTree::from_entries(op, &entries),
            specs,
            next_end,
            watermark,
            accepted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::ops::{Max, Sum};

    #[test]
    fn tumbling_sum_emits_on_watermark() {
        let mut exec = TimeWindowExec::new(Sum::<f64>::new(), vec![TimeWindowSpec::tumbling(10)]);
        for ts in 0..25u64 {
            assert!(exec.insert(ts, &1.0));
        }
        // Nothing due yet.
        assert!(exec.advance_watermark(9).is_empty());
        // Watermark 10 closes [0, 10).
        assert_eq!(exec.advance_watermark(10), vec![(0, 10, 10.0)]);
        // 25 closes [10, 20) only; [20, 30) stays open.
        assert_eq!(exec.advance_watermark(25), vec![(0, 20, 10.0)]);
        assert_eq!(exec.finish(), vec![(0, 30, 5.0)]);
    }

    #[test]
    fn sliding_window_overlaps() {
        let mut exec = TimeWindowExec::new(Sum::<f64>::new(), vec![TimeWindowSpec::new(10, 5)]);
        for ts in 0..20u64 {
            exec.insert(ts, &1.0);
        }
        let got = exec.finish();
        // Windows: [0,10), [5,15), [10,20), [15,25) — the last holds 5.
        assert_eq!(
            got,
            vec![(0, 10, 10.0), (0, 15, 10.0), (0, 20, 10.0), (0, 25, 5.0)]
        );
    }

    #[test]
    fn multiple_queries_share_the_tree() {
        let mut exec = TimeWindowExec::new(
            Sum::<f64>::new(),
            vec![TimeWindowSpec::tumbling(4), TimeWindowSpec::tumbling(8)],
        );
        for ts in 0..8u64 {
            exec.insert(ts, &(ts as f64));
        }
        let got = exec.finish();
        // Oldest window end first; ties in query order.
        assert_eq!(got, vec![(0, 4, 6.0), (0, 8, 22.0), (1, 8, 28.0)]);
    }

    #[test]
    fn late_tuple_is_refused_and_state_untouched() {
        let mut exec = TimeWindowExec::new(Sum::<f64>::new(), vec![TimeWindowSpec::tumbling(10)]);
        exec.insert(5, &1.0);
        exec.advance_watermark(10);
        assert!(!exec.insert(9, &100.0), "ts 9 < watermark 10 is late");
        assert_eq!(exec.accepted(), 1);
        exec.insert(10, &2.0);
        assert_eq!(exec.finish(), vec![(0, 20, 2.0)]);
    }

    #[test]
    fn disorder_below_watermark_lag_changes_nothing() {
        // In-order run.
        let tuples: Vec<(u64, f64)> = (0..200u64).map(|t| (t, ((t * 7) % 23) as f64)).collect();
        let spec = vec![TimeWindowSpec::new(16, 8)];
        let mut in_order = TimeWindowExec::new(Max::<f64>::new(), spec.clone());
        let mut expect = Vec::new();
        for &(ts, v) in &tuples {
            in_order.insert(ts, &v);
        }
        expect.extend(in_order.finish());

        // Same tuples, displaced by up to 31 positions, watermark trailing
        // by 32: every emission happens after all its tuples arrived.
        let mut shuffled = tuples.clone();
        for block in shuffled.chunks_mut(32) {
            block.reverse();
        }
        let mut ooo = TimeWindowExec::new(Max::<f64>::new(), spec);
        let mut got = Vec::new();
        for (i, &(ts, v)) in shuffled.iter().enumerate() {
            assert!(ooo.insert(ts, &v), "tuple {i} wrongly late");
            let arrived = shuffled[..=i].iter().map(|&(t, _)| t).max().unwrap_or(0);
            got.extend(ooo.advance_watermark(arrived.saturating_sub(32)));
        }
        got.extend(ooo.finish());
        assert_eq!(got, expect);
    }

    #[test]
    fn windows_before_first_event_are_skipped() {
        let mut exec = TimeWindowExec::new(Sum::<f64>::new(), vec![TimeWindowSpec::tumbling(10)]);
        exec.insert(1000, &1.0);
        // No flood of empty [0,10), [10,20)… answers.
        assert_eq!(exec.advance_watermark(1005), vec![]);
        assert_eq!(exec.finish(), vec![(0, 1010, 1.0)]);
    }

    #[test]
    fn eviction_keeps_live_set_bounded() {
        let mut exec = TimeWindowExec::new(Sum::<f64>::new(), vec![TimeWindowSpec::new(10, 5)]);
        for ts in 0..10_000u64 {
            exec.insert(ts, &1.0);
            if ts % 100 == 0 {
                exec.advance_watermark(ts.saturating_sub(20));
            }
        }
        assert!(
            exec.live() <= 200,
            "live set {} should track range + lag, not the stream",
            exec.live()
        );
    }
}
