//! Executor instrumentation (the `obs` feature): flight-recorder events
//! and optional slide-latency timing for [`SharedPlanExecutor`].
//!
//! The uninstrumented build (default) compiles the executor without the
//! observation field or any branches; with `--features obs` an
//! [`ExecObs`] can be attached to narrate the executor's life into a
//! `swag-trace` ring — one [`EventKind::Slide`] per shared-window slide
//! (annotated with the plan edge and answers delivered) and one
//! [`EventKind::BulkEvict`] per `push_batch` fast-path invocation — and,
//! when a histogram is supplied, to time each slide through the
//! sanctioned clock facade.
//!
//! [`SharedPlanExecutor`]: crate::SharedPlanExecutor
//! [`EventKind::Slide`]: swag_trace::EventKind::Slide
//! [`EventKind::BulkEvict`]: swag_trace::EventKind::BulkEvict

use swag_metrics::clock::Stopwatch;
use swag_metrics::registry::Histogram;
use swag_trace::{EventKind, FlightRecorder};

/// Instrumentation attached to one executor.
#[derive(Debug, Clone)]
pub struct ExecObs {
    recorder: FlightRecorder,
    latency: Option<Histogram>,
}

impl ExecObs {
    /// Record events into `recorder`; no latency timing.
    pub fn new(recorder: FlightRecorder) -> Self {
        ExecObs {
            recorder,
            latency: None,
        }
    }

    /// Record events and time every slide into `latency` (two clock
    /// reads per slide).
    pub fn with_latency(recorder: FlightRecorder, latency: Histogram) -> Self {
        ExecObs {
            recorder,
            latency: Some(latency),
        }
    }

    /// The ring events are recorded into.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Start a slide timer when latency timing is on.
    #[inline]
    pub(crate) fn slide_timer(&self) -> Option<Stopwatch> {
        self.latency.as_ref().map(|_| Stopwatch::start())
    }

    /// Finish a slide: record its latency sample (when timed) and its
    /// trace event.
    #[inline]
    pub(crate) fn slide_done(&self, timer: Option<Stopwatch>, edge: u64, answers: u64) {
        if let (Some(hist), Some(timer)) = (&self.latency, timer) {
            hist.record(timer.elapsed_ns());
        }
        self.recorder.record(EventKind::Slide, edge, answers);
    }

    /// Record one `push_batch` bulk fast-path invocation.
    #[inline]
    pub(crate) fn bulk_batch(&self, values: u64, answers: u64) {
        self.recorder.record(EventKind::BulkEvict, values, answers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;
    use crate::source::VecSource;
    use crate::SharedPlanExecutor;
    use swag_core::multi::MultiSlickDequeInv;
    use swag_core::ops::Sum;
    use swag_plan::{Pat, Query, SharedPlan};

    #[test]
    fn executor_narrates_slides_and_bulk_batches() {
        let plan = SharedPlan::build(&[Query::per_tuple(4), Query::per_tuple(2)], Pat::Pairs);
        let op = Sum::<f64>::new();
        let mut exec = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan);
        let recorder = FlightRecorder::new(64);
        let latency = Histogram::new();
        exec.attach_obs(ExecObs::with_latency(recorder.clone(), latency.clone()));
        let mut sink = CountSink::default();

        // Per-tuple pushes each slide once (one edge, length 1).
        for v in [1.0, 2.0, 3.0] {
            exec.push(v, &mut sink);
        }
        // A batch takes the single bulk fast path instead.
        exec.push_batch(&[4.0, 5.0, 6.0, 7.0], &mut sink);

        let events = recorder.snapshot();
        let slides = events.iter().filter(|e| e.kind == EventKind::Slide).count();
        let bulks: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::BulkEvict)
            .collect();
        assert_eq!(slides, 3, "one slide event per push");
        assert_eq!(bulks.len(), 1, "one bulk event per fast-path batch");
        assert_eq!(bulks[0].a, 4, "bulk event carries the batch length");
        assert_eq!(bulks[0].b, 8, "4 tuples × 2 due queries");
        assert_eq!(latency.count(), 3, "each pushed slide was timed");
        assert_eq!(sink.count, 14, "2 answers per tuple, 7 tuples");
    }

    #[test]
    fn pull_run_records_slides_without_latency() {
        let plan = SharedPlan::build(&[Query::new(6, 2)], Pat::Pairs);
        let op = Sum::<f64>::new();
        let mut exec = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan);
        let recorder = FlightRecorder::new(64);
        exec.attach_obs(ExecObs::new(recorder.clone()));
        let mut src = VecSource::new((0..20).map(f64::from).collect());
        let mut sink = CountSink::default();
        exec.run(&mut src, 5, &mut sink);
        let events = recorder.snapshot();
        assert_eq!(
            events.iter().filter(|e| e.kind == EventKind::Slide).count(),
            5,
            "one event per plan-edge slide"
        );
    }
}
