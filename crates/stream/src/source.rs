//! Stream sources: where tuples come from.
//!
//! The platform aggregates scalar readings (`f64`), mirroring the paper's
//! setup of aggregating one energy channel of the DEBS12 stream at a time.

use swag_data::debs::{DebsGenerator, ENERGY_CHANNELS};
use swag_data::synthetic::Workload;

/// A pull-based stream of scalar tuples.
pub trait Source {
    /// The next tuple, or `None` when the stream is exhausted.
    fn next_value(&mut self) -> Option<f64>;

    /// Collect up to `n` tuples into a vector (testing convenience).
    fn take_values(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_value() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }
}

/// Replays a pre-materialised vector of tuples.
#[derive(Debug, Clone)]
pub struct VecSource {
    values: Vec<f64>,
    pos: usize,
}

impl VecSource {
    /// Create a source replaying `values` once.
    pub fn new(values: Vec<f64>) -> Self {
        VecSource { values, pos: 0 }
    }

    /// Tuples remaining.
    pub fn remaining(&self) -> usize {
        self.values.len() - self.pos
    }
}

impl Source for VecSource {
    fn next_value(&mut self) -> Option<f64> {
        let v = self.values.get(self.pos).copied();
        if v.is_some() {
            self.pos += 1;
        }
        v
    }
}

/// An endless source drawing one energy channel from the DEBS-shaped
/// generator.
#[derive(Debug, Clone)]
pub struct DebsSource {
    generator: DebsGenerator,
    channel: usize,
}

impl DebsSource {
    /// Create a source over `channel` (0..3) of a seeded DEBS stream.
    pub fn new(seed: u64, channel: usize) -> Self {
        assert!(channel < ENERGY_CHANNELS, "channel out of range");
        DebsSource {
            generator: DebsGenerator::new(seed),
            channel,
        }
    }
}

impl Source for DebsSource {
    fn next_value(&mut self) -> Option<f64> {
        self.generator.next().map(|e| e.energy[self.channel])
    }
}

/// An endless source over a characterised synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    buffer: Vec<f64>,
    pos: usize,
    workload: Workload,
    seed: u64,
    chunk: usize,
}

impl WorkloadSource {
    /// Create a source generating `workload` in chunks.
    pub fn new(workload: Workload, seed: u64) -> Self {
        WorkloadSource {
            buffer: Vec::new(),
            pos: 0,
            workload,
            seed,
            chunk: 0,
        }
    }
}

impl Source for WorkloadSource {
    fn next_value(&mut self) -> Option<f64> {
        if self.pos == self.buffer.len() {
            // Monotone workloads must continue across chunks, so derive
            // each chunk's seed deterministically and regenerate in bulk.
            self.buffer = self
                .workload
                .generate(65_536, self.seed.wrapping_add(self.chunk as u64));
            if matches!(self.workload, Workload::Ascending | Workload::Descending) && self.chunk > 0
            {
                // Re-generate the full prefix shape instead: offset the ramp
                // so it keeps rising/falling across chunk boundaries.
                let offset = (self.chunk * 65_536) as f64;
                for v in &mut self.buffer {
                    match self.workload {
                        Workload::Ascending => *v += offset,
                        Workload::Descending => *v -= offset,
                        _ => unreachable!(),
                    }
                }
            }
            self.chunk += 1;
            self.pos = 0;
        }
        let v = self.buffer[self.pos];
        self.pos += 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_replays_and_exhausts() {
        let mut s = VecSource::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_value(), Some(1.0));
        assert_eq!(s.take_values(5), vec![2.0, 3.0]);
        assert_eq!(s.next_value(), None);
    }

    #[test]
    fn debs_source_is_deterministic() {
        let a = DebsSource::new(3, 0).take_values(100);
        let b = DebsSource::new(3, 0).take_values(100);
        assert_eq!(a, b);
        let c = DebsSource::new(3, 1).take_values(100);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_source_spans_chunks() {
        let mut s = WorkloadSource::new(Workload::Ascending, 0);
        let vals = s.take_values(70_000);
        assert_eq!(vals.len(), 70_000);
        assert!(vals.windows(2).all(|w| w[0] < w[1]), "must keep ascending");
    }

    #[test]
    fn descending_workload_spans_chunks() {
        let mut s = WorkloadSource::new(Workload::Descending, 0);
        let vals = s.take_values(70_000);
        assert!(vals.windows(2).all(|w| w[0] > w[1]), "must keep descending");
    }
}
