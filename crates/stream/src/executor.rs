//! Execution loops wiring sources, partial aggregation, final aggregation,
//! and sinks together — the platform of the paper's §5.1.
//!
//! * [`run_single_query`] — the Exp 1/Exp 3 loop: one query, slide 1,
//!   optional per-answer latency recording.
//! * [`SharedPlanExecutor`] — the multi-ACQ loop of Algorithms 1/2: a
//!   shared plan's edges drive partial aggregation and per-edge answer
//!   delivery through any [`MultiFinalAggregator`]. Requires a plan with
//!   uniform per-query partial counts (always true for per-tuple slides).
//! * [`GeneralPlanExecutor`] — exact execution of arbitrary (non-uniform)
//!   plans by direct window re-aggregation; the correctness fallback.

use crate::partial::PartialAggregator;
use crate::sink::Sink;
use crate::source::Source;
use swag_core::aggregator::{FinalAggregator, MultiFinalAggregator};
use swag_core::ops::AggregateOp;
use swag_metrics::latency::{LatencyRecorder, LatencySummary};
use swag_metrics::throughput::{Throughput, ThroughputMeter};

/// Outcome of an execution run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Results (single-query) or plan slides (multi-query) per second.
    pub throughput: Throughput,
    /// Per-answer latency summary, when recording was requested.
    pub latency: Option<LatencySummary>,
    /// Total answers delivered to the sink.
    pub answers: u64,
}

/// Drive one single-query window (slide 1) over `tuples` tuples.
///
/// When `record_latency` is set, every slide is individually timed (adding
/// a clock read per tuple — run throughput and latency measurements
/// separately, as the paper does in Exp 1 vs Exp 3).
pub fn run_single_query<O, A, S, K>(
    op: &O,
    agg: &mut A,
    source: &mut S,
    tuples: u64,
    sink: &mut K,
    record_latency: bool,
) -> RunStats
where
    O: AggregateOp<Input = f64>,
    A: FinalAggregator<O>,
    S: Source,
    K: Sink<O::Partial>,
{
    let mut recorder = record_latency.then(|| LatencyRecorder::with_capacity(tuples as usize));
    let mut meter = ThroughputMeter::start();
    let mut processed = 0u64;
    while processed < tuples {
        let Some(v) = source.next_value() else { break };
        let partial = op.lift(&v);
        // The recorder's `time` is the sanctioned clock facade — the
        // executor itself never reads the clock.
        let answer = if let Some(rec) = recorder.as_mut() {
            rec.time(|| agg.slide(partial))
        } else {
            agg.slide(partial)
        };
        sink.deliver(0, answer);
        meter.tick();
        processed += 1;
    }
    let throughput = meter.finish();
    RunStats {
        throughput,
        latency: recorder.map(|r| r.summarize()),
        answers: processed,
    }
}

/// Multi-ACQ executor over a uniform shared plan.
///
/// The executor is stateful across calls: the plan-edge cursor persists,
/// so interleaving [`run`](Self::run) and [`push`](Self::push) calls
/// continues the same logical stream.
pub struct SharedPlanExecutor<O: AggregateOp, M: MultiFinalAggregator<O>> {
    plan: swag_plan::SharedPlan,
    partial_agg: PartialAggregator<O>,
    agg: M,
    /// Per-query range in partials (uniform across the plan).
    query_ranges: Vec<usize>,
    /// Position of each query's range within the aggregator's descending
    /// deduplicated range list.
    range_slot: Vec<usize>,
    scratch: Vec<O::Partial>,
    /// Reusable lift buffer for [`push_batch`](Self::push_batch)'s
    /// per-tuple fast path.
    lift_scratch: Vec<O::Partial>,
    /// Reusable batched-answer buffer (`bulk_slide_multi` layout: one
    /// entry per range per batch element, batch-major).
    bulk_scratch: Vec<O::Partial>,
    /// The plan edge the next fragment belongs to (persists across calls).
    edge_idx: usize,
    /// Tuples buffered by [`push`](Self::push) toward the current edge.
    pending: std::collections::VecDeque<f64>,
    /// Attached instrumentation (`obs` feature only — the default build
    /// has no field and no checks).
    #[cfg(feature = "obs")]
    obs: Option<crate::obs::ExecObs>,
}

impl<O, M> SharedPlanExecutor<O, M>
where
    O: AggregateOp<Input = f64> + Clone,
    M: MultiFinalAggregator<O>,
{
    /// Build an executor for `plan`. Panics if the plan's per-query
    /// partial counts are not uniform or if the plan contains Cutty
    /// punctuation edges (use [`GeneralPlanExecutor`] for those).
    pub fn new(op: O, plan: swag_plan::SharedPlan) -> Self {
        assert!(
            plan.all_edges_cut(),
            "plan has punctuation edges; use GeneralPlanExecutor"
        );
        let query_ranges = plan
            .uniform_query_ranges()
            .expect("plan is not uniform; use GeneralPlanExecutor");
        let agg = M::with_ranges(op.clone(), &query_ranges);
        let desc = agg.ranges().to_vec();
        let range_slot = query_ranges
            .iter()
            .map(|r| desc.iter().position(|d| d == r).expect("range registered"))
            .collect();
        SharedPlanExecutor {
            plan,
            partial_agg: PartialAggregator::new(op),
            agg,
            query_ranges,
            range_slot,
            scratch: Vec::new(),
            lift_scratch: Vec::new(),
            bulk_scratch: Vec::new(),
            edge_idx: 0,
            pending: std::collections::VecDeque::new(),
            #[cfg(feature = "obs")]
            obs: None,
        }
    }

    /// Attach instrumentation: subsequent slides record trace events (and
    /// latency samples, when the obs carries a histogram).
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, obs: crate::obs::ExecObs) {
        self.obs = Some(obs);
    }

    /// The underlying plan.
    pub fn plan(&self) -> &swag_plan::SharedPlan {
        &self.plan
    }

    /// The multi-query aggregator driven by the plan, for inspection
    /// (e.g. invariant checking after a drain).
    pub fn aggregator(&self) -> &M {
        &self.agg
    }

    /// Per-query window lengths in partials.
    pub fn query_ranges(&self) -> &[usize] {
        &self.query_ranges
    }

    /// Tuples the current plan edge still needs before it completes (its
    /// fragment length minus any tuples already buffered by
    /// [`push`](Self::push)).
    pub fn tuples_until_next_slide(&self) -> u64 {
        self.plan.edges()[self.edge_idx].length - self.pending.len() as u64
    }

    /// Execute `slides` plan edges (partial aggregations), delivering due
    /// answers per edge. Stops early if the source runs dry. Continues
    /// from wherever a previous `run`/`push` left the edge cursor.
    pub fn run<S, K>(&mut self, source: &mut S, slides: u64, sink: &mut K) -> RunStats
    where
        S: Source + ?Sized,
        K: Sink<O::Partial>,
    {
        let mut meter = ThroughputMeter::start();
        let mut answers = 0u64;
        let edge_count = self.plan.edges().len();
        let mut processed = 0u64;
        while processed < slides {
            let length = self.plan.edges()[self.edge_idx].length;
            let Some(partial) = self.partial_agg.aggregate(source, length) else {
                break;
            };
            #[cfg(feature = "obs")]
            let timer = self.obs.as_ref().and_then(|o| o.slide_timer());
            self.agg.slide_multi(partial, &mut self.scratch);
            for &qi in &self.plan.edges()[self.edge_idx].queries {
                sink.deliver(qi, self.scratch[self.range_slot[qi]].clone());
                answers += 1;
            }
            #[cfg(feature = "obs")]
            if let Some(o) = &self.obs {
                let due = self.plan.edges()[self.edge_idx].queries.len() as u64;
                o.slide_done(timer, self.edge_idx as u64, due);
            }
            self.edge_idx = (self.edge_idx + 1) % edge_count;
            meter.tick();
            processed += 1;
        }
        RunStats {
            throughput: meter.finish(),
            latency: None,
            answers,
        }
    }

    /// Push-based execution: buffer one tuple and, once the current plan
    /// edge's fragment completes, slide the shared window and deliver the
    /// due answers. Returns the number of answers delivered.
    ///
    /// This is the entry point the sharded engine uses: each key owns an
    /// executor and tuples arrive one at a time rather than being pulled
    /// from a [`Source`]. A tuple completes at most one edge (fragments
    /// span at least one tuple), and answers are identical to a pull-based
    /// [`run`](Self::run) over the same tuple sequence.
    pub fn push<K>(&mut self, value: f64, sink: &mut K) -> u64
    where
        K: Sink<O::Partial>,
    {
        self.pending.push_back(value); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
        let length = self.plan.edges()[self.edge_idx].length as usize;
        if self.pending.len() < length {
            return 0;
        }
        let op = self.partial_agg.op().clone();
        let first = self.pending.pop_front().expect("length >= 1"); // check:allow queue invariant: the buffered tuples were counted above
        let mut partial = op.lift(&first);
        for _ in 1..length {
            let v = self.pending.pop_front().expect("buffered length tuples"); // check:allow queue invariant: the buffered tuples were counted above
            partial = op.combine(&partial, &op.lift(&v));
        }
        #[cfg(feature = "obs")]
        let timer = self.obs.as_ref().and_then(|o| o.slide_timer());
        self.agg.slide_multi(partial, &mut self.scratch);
        let mut answers = 0u64;
        for &qi in &self.plan.edges()[self.edge_idx].queries {
            sink.deliver(qi, self.scratch[self.range_slot[qi]].clone());
            answers += 1;
        }
        #[cfg(feature = "obs")]
        if let Some(o) = &self.obs {
            o.slide_done(timer, self.edge_idx as u64, answers);
        }
        self.edge_idx = (self.edge_idx + 1) % self.plan.edges().len();
        answers
    }

    /// Batched push ingestion: equivalent to calling [`push`](Self::push)
    /// once per value, but whole fragments fold straight from the slice via
    /// the op's batch kernels (no pending-buffer round-trip), and per-tuple
    /// single-edge plans batch through the aggregator's `bulk_slide_multi`
    /// fast path. Answers match `push` exactly for integer-valued and
    /// selective ops; floating-point sums over fragments spanning at least
    /// the kernel lane width may differ in low-order bits because
    /// `fold_slice` is allowed to regroup combines. Returns the answers
    /// delivered.
    pub fn push_batch<K>(&mut self, values: &[f64], sink: &mut K) -> u64
    where
        K: Sink<O::Partial>,
    {
        if values.is_empty() {
            return 0;
        }
        let op = self.partial_agg.op().clone();
        // Fast path: a single length-1 edge means every value slides the
        // shared window once with the same due-query set, so the whole
        // batch can run range-major through `bulk_slide_multi`.
        if self.pending.is_empty()
            && self.plan.edges().len() == 1
            && self.plan.edges()[0].length == 1
        {
            op.lift_slice_into(values, &mut self.lift_scratch);
            self.agg
                .bulk_slide_multi(&self.lift_scratch, &mut self.bulk_scratch);
            let q = self.agg.ranges().len();
            let mut answers = 0u64;
            for k in 0..values.len() {
                for &qi in &self.plan.edges()[0].queries {
                    sink.deliver(qi, self.bulk_scratch[k * q + self.range_slot[qi]].clone());
                    answers += 1;
                }
            }
            #[cfg(feature = "obs")]
            if let Some(o) = &self.obs {
                o.bulk_batch(values.len() as u64, answers);
            }
            return answers;
        }
        let mut answers = 0u64;
        let mut idx = 0usize;
        // Finish the fragment a previous push left partially buffered.
        while idx < values.len() && !self.pending.is_empty() {
            answers += self.push(values[idx], sink); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
            idx += 1;
        }
        // Whole fragments directly from the slice through the op's batch
        // kernels: `lift_slice_into` + `fold_slice` instead of a per-value
        // lift-and-combine loop. `fold_slice` may regroup the combines
        // (associativity), so fragments spanning at least the kernel lane
        // width can differ from `push` in low-order float bits; integer
        // and selective ops stay exact.
        loop {
            let length = self.plan.edges()[self.edge_idx].length as usize;
            if values.len() - idx < length {
                break;
            }
            op.lift_slice_into(&values[idx..idx + length], &mut self.lift_scratch);
            let partial = op.fold_slice(&self.lift_scratch[0], &self.lift_scratch[1..]);
            idx += length;
            #[cfg(feature = "obs")]
            let timer = self.obs.as_ref().and_then(|o| o.slide_timer());
            self.agg.slide_multi(partial, &mut self.scratch);
            #[cfg(feature = "obs")]
            let before = answers;
            for &qi in &self.plan.edges()[self.edge_idx].queries {
                sink.deliver(qi, self.scratch[self.range_slot[qi]].clone());
                answers += 1;
            }
            #[cfg(feature = "obs")]
            if let Some(o) = &self.obs {
                o.slide_done(timer, self.edge_idx as u64, answers - before);
            }
            self.edge_idx = (self.edge_idx + 1) % self.plan.edges().len();
        }
        // Tail: too short for the current fragment, buffer it.
        for &v in &values[idx..] {
            answers += self.push(v, sink); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
        }
        answers
    }
}

/// Exact executor for arbitrary shared plans — non-uniform partial counts
/// and Cutty punctuation edges included: keeps the window's full partials
/// in a ring plus the running fragment, and re-aggregates each due query
/// over its per-edge partial count.
pub struct GeneralPlanExecutor<O: AggregateOp> {
    plan: swag_plan::SharedPlan,
    op: O,
    ring: Vec<O::Partial>,
    /// The running fragment since the last cut (Cutty's mid-partial value).
    prefix: Option<O::Partial>,
    /// `counts[edge][k]` = partials covering the k-th due query at that
    /// edge, including the running fragment at punctuation edges.
    counts: Vec<Vec<usize>>,
    curr: usize,
}

impl<O> GeneralPlanExecutor<O>
where
    O: AggregateOp<Input = f64> + Clone,
{
    /// Build an executor for any plan.
    pub fn new(op: O, plan: swag_plan::SharedPlan) -> Self {
        let wsize = plan.wsize();
        let ring = (0..wsize).map(|_| op.identity()).collect();
        let counts = plan
            .edges()
            .iter()
            .enumerate()
            .map(|(ei, edge)| {
                edge.queries
                    .iter()
                    .map(|&qi| plan.partials_covering(qi, ei))
                    .collect()
            })
            .collect();
        GeneralPlanExecutor {
            op,
            plan,
            ring,
            prefix: None,
            counts,
            curr: 0,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &swag_plan::SharedPlan {
        &self.plan
    }

    /// Fold the `k` most recent full partials, ending at ring slot
    /// `newest`, oldest first.
    fn fold_full(&self, newest: usize, k: usize) -> O::Partial {
        let wsize = self.ring.len();
        let start = (newest + wsize + 1 - k) % wsize;
        let mut acc = self.ring[start].clone();
        for j in 1..k {
            acc = self.op.combine(&acc, &self.ring[(start + j) % wsize]);
        }
        acc
    }

    /// Execute `slides` plan edges, delivering due answers per edge.
    pub fn run<S, K>(&mut self, source: &mut S, slides: u64, sink: &mut K) -> RunStats
    where
        S: Source + ?Sized,
        K: Sink<O::Partial>,
    {
        let wsize = self.ring.len();
        let mut meter = ThroughputMeter::start();
        let mut answers = 0u64;
        let mut edge_idx = 0usize;
        let edge_count = self.plan.edges().len();
        let mut processed = 0u64;
        'outer: while processed < slides {
            let edge = &self.plan.edges()[edge_idx];
            // Accumulate this edge's tuples into the running fragment.
            for _ in 0..edge.length {
                let Some(v) = source.next_value() else {
                    break 'outer;
                };
                let lifted = self.op.lift(&v);
                self.prefix = Some(match self.prefix.take() {
                    None => lifted,
                    Some(acc) => self.op.combine(&acc, &lifted),
                });
            }
            if edge.cuts {
                let partial = self
                    .prefix
                    .take()
                    .expect("edges consume at least one tuple");
                self.ring[self.curr] = partial;
            }
            let newest_full = if edge.cuts {
                self.curr
            } else {
                (self.curr + wsize - 1) % wsize
            };
            for (slot, &qi) in edge.queries.iter().enumerate() {
                let k = self.counts[edge_idx][slot];
                let answer = if edge.cuts {
                    self.fold_full(newest_full, k)
                } else {
                    // k includes the running fragment.
                    let fragment = self
                        .prefix
                        .clone()
                        .expect("punctuation edges follow at least one tuple");
                    if k > 1 {
                        let full = self.fold_full(newest_full, k - 1);
                        self.op.combine(&full, &fragment)
                    } else {
                        fragment
                    }
                };
                sink.deliver(qi, answer);
                answers += 1;
            }
            if edge.cuts {
                self.curr = (self.curr + 1) % wsize;
            }
            edge_idx = (edge_idx + 1) % edge_count;
            meter.tick();
            processed += 1;
        }
        RunStats {
            throughput: meter.finish(),
            latency: None,
            answers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, CountSink};
    use crate::source::VecSource;
    use swag_core::algorithms::{Naive, SlickDequeInv};
    use swag_core::multi::{MultiNaive, MultiSlickDequeInv, MultiSlickDequeNonInv};
    use swag_core::ops::{Max, Sum};
    use swag_plan::{Pat, Query, SharedPlan};

    #[test]
    fn single_query_run_delivers_answers() {
        let op = Sum::<f64>::new();
        let mut agg = Naive::new(op, 3);
        let mut src = VecSource::new(vec![1.0, 2.0, 3.0, 4.0]);
        let mut sink = CollectSink::new();
        let stats = run_single_query(&op, &mut agg, &mut src, 10, &mut sink, false);
        assert_eq!(stats.answers, 4); // source exhausted after 4
        let answers: Vec<f64> = sink.answers.iter().map(|(_, a)| *a).collect();
        assert_eq!(answers, vec![1.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn single_query_latency_recording() {
        let op = Sum::<f64>::new();
        let mut agg = SlickDequeInv::new(op, 8);
        let mut src = VecSource::new((0..1000).map(|i| i as f64).collect());
        let mut sink = CountSink::default();
        let stats = run_single_query(&op, &mut agg, &mut src, 1000, &mut sink, true);
        let lat = stats.latency.expect("latency requested");
        assert_eq!(lat.count, 1000);
        assert!(lat.max >= lat.min);
        assert_eq!(sink.count, 1000);
    }

    #[test]
    fn shared_plan_example_1_end_to_end() {
        // Paper Example 1: Q1 (r=6, s=2) and Q2 (r=8, s=4) computing Max
        // over one stream; partials every 2 tuples.
        let q1 = Query::new(6, 2);
        let q2 = Query::new(8, 4);
        let plan = SharedPlan::build(&[q1, q2], Pat::Pairs);
        let op = Max::<f64>::new();
        let mut exec = SharedPlanExecutor::<_, MultiSlickDequeNonInv<_>>::new(op, plan);
        let tuples: Vec<f64> = vec![3.0, 7.0, 1.0, 4.0, 9.0, 2.0, 5.0, 8.0, 6.0, 0.0, 2.0, 1.0];
        let mut src = VecSource::new(tuples.clone());
        let mut sink = CollectSink::new();
        exec.run(&mut src, 6, &mut sink);

        // Q1 reports at tuples 2,4,6,8,10,12 over the last 6 tuples.
        let q1_answers: Vec<Option<f64>> = sink.for_query(0).into_iter().cloned().collect();
        let expect_q1: Vec<Option<f64>> = [2usize, 4, 6, 8, 10, 12]
            .iter()
            .map(|&p| {
                let lo = p.saturating_sub(6);
                tuples[lo..p].iter().cloned().reduce(f64::max)
            })
            .collect();
        assert_eq!(q1_answers, expect_q1);

        // Q2 reports at tuples 4,8,12 over the last 8 tuples.
        let q2_answers: Vec<Option<f64>> = sink.for_query(1).into_iter().cloned().collect();
        let expect_q2: Vec<Option<f64>> = [4usize, 8, 12]
            .iter()
            .map(|&p| {
                let lo = p.saturating_sub(8);
                tuples[lo..p].iter().cloned().reduce(f64::max)
            })
            .collect();
        assert_eq!(q2_answers, expect_q2);
    }

    #[test]
    fn shared_and_general_executors_agree() {
        let queries = [Query::new(6, 2), Query::new(9, 3)];
        let plan = SharedPlan::build(&queries, Pat::Cutty);
        assert!(plan.uniform_query_ranges().is_some());
        let op = Sum::<f64>::new();
        let tuples: Vec<f64> = (0..600).map(|i| ((i * 37) % 101) as f64).collect();

        let mut shared = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan.clone());
        let mut s1 = VecSource::new(tuples.clone());
        let mut sink1 = CollectSink::new();
        shared.run(&mut s1, 50, &mut sink1);

        let mut general = GeneralPlanExecutor::new(op, plan);
        let mut s2 = VecSource::new(tuples);
        let mut sink2 = CollectSink::new();
        general.run(&mut s2, 50, &mut sink2);

        assert_eq!(sink1.answers.len(), sink2.answers.len());
        for (a, b) in sink1.answers.iter().zip(&sink2.answers) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9, "{a:?} vs {b:?}");
        }

        // Same plan under a non-invertible op: Max via the monotone deque.
        // Exercises the eviction path slide_multi never takes for Sum.
        let queries = [Query::new(6, 2), Query::new(9, 3)];
        let plan = SharedPlan::build(&queries, Pat::Cutty);
        let op = Max::<f64>::new();
        let tuples: Vec<f64> = (0..600).map(|i| ((i * 37) % 101) as f64).collect();

        let mut shared = SharedPlanExecutor::<_, MultiSlickDequeNonInv<_>>::new(op, plan.clone());
        let mut s1 = VecSource::new(tuples.clone());
        let mut sink1 = CollectSink::new();
        shared.run(&mut s1, 50, &mut sink1);

        let mut general = GeneralPlanExecutor::new(op, plan);
        let mut s2 = VecSource::new(tuples);
        let mut sink2 = CollectSink::new();
        general.run(&mut s2, 50, &mut sink2);

        assert_eq!(sink1.answers.len(), sink2.answers.len());
        assert!(!sink1.answers.is_empty());
        for (a, b) in sink1.answers.iter().zip(&sink2.answers) {
            assert_eq!(a, b, "max disagrees");
        }
    }

    #[test]
    fn general_executor_handles_non_uniform_plans() {
        // The non-uniform example from the plan tests.
        let queries = [Query::new(5, 2), Query::new(9, 3)];
        let plan = SharedPlan::build(&queries, Pat::Cutty);
        assert!(plan.uniform_query_ranges().is_none());
        let op = Sum::<f64>::new();
        let tuples: Vec<f64> = (1..=60).map(|i| i as f64).collect();
        let mut exec = GeneralPlanExecutor::new(op, plan);
        let mut src = VecSource::new(tuples.clone());
        let mut sink = CollectSink::new();
        exec.run(&mut src, 40, &mut sink);

        // Q1 (r=5, s=2) reports at tuple positions 2,4,6,…
        let q1: Vec<f64> = sink.for_query(0).into_iter().cloned().collect();
        let expect: Vec<f64> = (1..=q1.len())
            .map(|k| {
                let p = 2 * k;
                let lo = p.saturating_sub(5);
                tuples[lo..p].iter().sum()
            })
            .collect();
        assert_eq!(q1, expect);
    }

    #[test]
    fn push_batch_matches_push_on_multi_edge_plan() {
        let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
        let op = Sum::<f64>::new();
        let values: Vec<f64> = (0..97).map(|i| ((i * 13) % 29) as f64).collect();

        let mut one = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan.clone());
        let mut sink_one = CollectSink::new();
        for &v in &values {
            one.push(v, &mut sink_one);
        }

        // Odd chunk sizes leave fragments straddling batch boundaries.
        let mut batched = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan);
        let mut sink_batched = CollectSink::new();
        for chunk in values.chunks(7) {
            batched.push_batch(chunk, &mut sink_batched);
        }
        assert_eq!(sink_one.answers, sink_batched.answers);
    }

    #[test]
    fn push_batch_per_tuple_fast_path_matches_push() {
        let plan = SharedPlan::build(&[Query::per_tuple(5), Query::per_tuple(3)], Pat::Pairs);
        assert_eq!(plan.edges().len(), 1, "per-tuple plans have one edge");
        let op = Sum::<f64>::new();
        let values: Vec<f64> = (0..64).map(|i| ((i * 7) % 23) as f64 * 0.5).collect();

        let mut one = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan.clone());
        let mut sink_one = CollectSink::new();
        for &v in &values {
            one.push(v, &mut sink_one);
        }

        let mut batched = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan);
        let mut sink_batched = CollectSink::new();
        for chunk in values.chunks(16) {
            batched.push_batch(chunk, &mut sink_batched);
        }
        assert_eq!(sink_one.answers, sink_batched.answers);
    }

    #[test]
    fn multi_naive_through_shared_executor() {
        let plan = SharedPlan::build(&[Query::per_tuple(4), Query::per_tuple(2)], Pat::Pairs);
        let op = Sum::<f64>::new();
        let mut exec = SharedPlanExecutor::<_, MultiNaive<_>>::new(op, plan);
        let mut src = VecSource::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut sink = CollectSink::new();
        let stats = exec.run(&mut src, 5, &mut sink);
        assert_eq!(stats.answers, 10);
        let q0: Vec<f64> = sink.for_query(0).into_iter().cloned().collect();
        assert_eq!(q0, vec![1.0, 3.0, 6.0, 10.0, 14.0]);
        let q1: Vec<f64> = sink.for_query(1).into_iter().cloned().collect();
        assert_eq!(q1, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }
}
