//! # swag-stream — the stand-alone stream aggregator platform
//!
//! The experimental platform of the paper's §5.1, reimplemented in Rust:
//! pull-based [`source`]s (DEBS-shaped, synthetic, or replayed vectors),
//! the [`partial`] aggregator cutting tuples into fragments along a shared
//! plan, [`executor`] loops driving any final aggregator, and [`sink`]s
//! receiving the continuous answers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod partial;
pub mod reorder;
pub mod sink;
pub mod source;

pub use executor::{run_single_query, GeneralPlanExecutor, RunStats, SharedPlanExecutor};
pub use partial::PartialAggregator;
pub use reorder::{ReorderBuffer, ReorderError};
pub use sink::{CollectSink, CountSink, NullSink, Sink};
pub use source::{DebsSource, Source, VecSource, WorkloadSource};
