//! # swag-stream — the stand-alone stream aggregator platform
//!
//! The experimental platform of the paper's §5.1, reimplemented in Rust:
//! pull-based [`source`]s (DEBS-shaped, synthetic, or replayed vectors),
//! the [`partial`] aggregator cutting tuples into fragments along a shared
//! plan, [`executor`] loops driving any final aggregator, and [`sink`]s
//! receiving the continuous answers.
//!
//! The optional `obs` feature adds executor instrumentation ([`obs`]):
//! flight-recorder events and slide-latency timing on
//! [`SharedPlanExecutor`], attached via
//! [`SharedPlanExecutor::attach_obs`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod executor;
#[cfg(feature = "obs")]
pub mod obs;
pub mod partial;
pub mod reorder;
pub mod sink;
pub mod source;
pub mod time_window;

pub use executor::{run_single_query, GeneralPlanExecutor, RunStats, SharedPlanExecutor};
#[cfg(feature = "obs")]
pub use obs::ExecObs;
pub use partial::PartialAggregator;
pub use reorder::{ReorderBuffer, ReorderError};
pub use sink::{CollectSink, CountSink, NullSink, Sink};
pub use source::{DebsSource, Source, VecSource, WorkloadSource};
pub use time_window::{TimeAnswer, TimeWindowExec, TimeWindowSpec};
