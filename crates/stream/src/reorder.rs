//! Bounded reordering of slightly out-of-order arrivals (paper §3.1).
//!
//! The paper's arrival-order assumption: "the arriving tuples have to be
//! in-order or slightly out-of-order. As long as the out-of-order tuples
//! are within the same partial aggregation, the final result will not be
//! affected." [`ReorderBuffer`] operationalises the *slightly* part: it
//! holds back up to `depth` tuples and releases them in sequence order,
//! so any displacement ≤ `depth` is repaired before the partial
//! aggregator sees the stream. Displacements beyond the buffer are
//! surfaced as [`ReorderError::LateArrival`] — the "extreme situations"
//! whose handling the paper leaves to the surrounding system.

use std::collections::{BinaryHeap, VecDeque};

/// A sequenced tuple: `(sequence number, value)`.
pub type SeqTuple = (u64, f64);

/// Why a push into the reorder buffer was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReorderError {
    /// The tuple's sequence number was already released: it would have to
    /// be merged into an already-finalised partial.
    LateArrival {
        /// Sequence number of the late tuple.
        seq: u64,
        /// The next sequence number the buffer can still accept.
        watermark: u64,
    },
    /// A tuple with this sequence number is already buffered.
    Duplicate {
        /// The duplicated sequence number.
        seq: u64,
    },
}

/// Min-heap entry ordered by sequence number.
#[derive(Debug, PartialEq)]
struct Pending(u64, f64);

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest seq on
        // top.
        other.0.cmp(&self.0)
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Repairs displacements up to `depth` positions, emitting tuples in
/// strict sequence order.
#[derive(Debug)]
pub struct ReorderBuffer {
    depth: usize,
    heap: BinaryHeap<Pending>,
    /// Next sequence number to release.
    next_seq: u64,
    /// Upper bound on every sequence number currently in `heap` (monotone;
    /// never lowered on release). Lets `push` rule out duplicates without
    /// scanning the heap whenever `seq` exceeds everything ever buffered.
    max_buffered: u64,
    ready: VecDeque<f64>,
}

impl ReorderBuffer {
    /// Create a buffer tolerating displacements of up to `depth`
    /// positions (≥ 1).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1, "reorder depth must be at least 1");
        ReorderBuffer {
            depth,
            heap: BinaryHeap::with_capacity(depth + 1),
            next_seq: 0,
            max_buffered: 0,
            ready: VecDeque::new(),
        }
    }

    /// Offer one tuple. In-order and repairable tuples are accepted;
    /// drain released values with [`pop_ready`](Self::pop_ready).
    pub fn push(&mut self, seq: u64, value: f64) -> Result<(), ReorderError> {
        if seq < self.next_seq {
            return Err(ReorderError::LateArrival {
                seq,
                watermark: self.next_seq,
            });
        }
        // Only scan the heap when a duplicate is possible: anything above
        // the largest sequence number ever buffered cannot be in there.
        // (`seq >= next_seq + depth` would be wrong — a buffered tuple can
        // sit arbitrarily far above `next_seq` while a gap holds it back.)
        if !self.heap.is_empty() && seq <= self.max_buffered && self.heap.iter().any(|p| p.0 == seq)
        {
            return Err(ReorderError::Duplicate { seq });
        }
        self.max_buffered = self.max_buffered.max(seq);
        self.heap.push(Pending(seq, value)); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
        self.release(false);
        Ok(())
    }

    /// The next released value, in sequence order. O(1): the released run
    /// is a queue, not a shift-everything vector.
    pub fn pop_ready(&mut self) -> Option<f64> {
        self.ready.pop_front()
    }

    /// Number of tuples currently held back.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Flush everything still buffered, in sequence order (end of
    /// stream). Gaps are skipped — the missing tuples are reported as
    /// the final watermark.
    pub fn flush(&mut self) {
        self.release(true);
        while let Some(Pending(seq, v)) = self.heap.pop() {
            self.ready.push_back(v);
            self.next_seq = seq + 1;
        }
    }

    fn release(&mut self, force: bool) {
        // Release the contiguous run at the heap top; when over depth,
        // also advance past gaps (a missing tuple beyond the buffer's
        // reach can never be repaired).
        loop {
            match self.heap.peek() {
                Some(&Pending(seq, _)) if seq == self.next_seq => {
                    let Pending(_, v) = self.heap.pop().expect("peeked"); // check:allow queue invariant: the buffered tuples were counted above
                    self.ready.push_back(v); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
                    self.next_seq += 1;
                }
                Some(_) if force || self.heap.len() > self.depth => {
                    // Gap at the head and the buffer is full: give up on
                    // the missing tuple and resume from the next present
                    // one.
                    let Pending(seq, v) = self.heap.pop().expect("non-empty"); // check:allow queue invariant: the buffered tuples were counted above
                    self.ready.push_back(v); // alloc:amortized buffer growth is bounded by plan length / reorder high-water mark
                    self.next_seq = seq + 1;
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(buf: &mut ReorderBuffer) -> Vec<f64> {
        let mut out = Vec::new();
        while let Some(v) = buf.pop_ready() {
            out.push(v);
        }
        out
    }

    #[test]
    fn in_order_passes_through() {
        let mut buf = ReorderBuffer::new(4);
        for i in 0..5 {
            buf.push(i, i as f64).unwrap();
        }
        assert_eq!(drain(&mut buf), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn adjacent_swap_is_repaired() {
        let mut buf = ReorderBuffer::new(2);
        buf.push(1, 1.0).unwrap();
        buf.push(0, 0.0).unwrap();
        buf.push(2, 2.0).unwrap();
        assert_eq!(drain(&mut buf), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn displacement_within_depth_is_repaired() {
        let mut buf = ReorderBuffer::new(3);
        for (seq, v) in [(2u64, 2.0), (0, 0.0), (3, 3.0), (1, 1.0), (4, 4.0)] {
            buf.push(seq, v).unwrap();
        }
        buf.flush();
        assert_eq!(drain(&mut buf), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn late_arrival_is_rejected() {
        let mut buf = ReorderBuffer::new(1);
        buf.push(1, 1.0).unwrap();
        buf.push(2, 2.0).unwrap(); // depth exceeded: gives up on seq 0
        let _ = drain(&mut buf);
        assert_eq!(
            buf.push(0, 0.0),
            Err(ReorderError::LateArrival {
                seq: 0,
                watermark: 3
            })
        );
    }

    #[test]
    fn duplicate_is_rejected() {
        let mut buf = ReorderBuffer::new(4);
        buf.push(5, 5.0).unwrap();
        assert_eq!(buf.push(5, 5.5), Err(ReorderError::Duplicate { seq: 5 }));
    }

    #[test]
    fn duplicate_far_above_next_seq_is_still_caught() {
        // A buffered tuple can sit arbitrarily far above next_seq while a
        // gap holds it back — the duplicate check must not assume the
        // buffer only spans [next_seq, next_seq + depth).
        let mut buf = ReorderBuffer::new(2);
        buf.push(10, 10.0).unwrap();
        buf.push(20, 20.0).unwrap();
        buf.push(30, 30.0).unwrap(); // over depth: seq 10 releases, next_seq = 11
        assert_eq!(drain(&mut buf), vec![10.0]);
        // 20 ≥ next_seq + depth = 13, yet it IS buffered.
        assert_eq!(buf.push(20, 20.5), Err(ReorderError::Duplicate { seq: 20 }));
        buf.flush();
        assert_eq!(drain(&mut buf), vec![20.0, 30.0]);
    }

    #[test]
    fn monotone_streams_never_rescan_but_stay_correct() {
        // In-order and gently disordered streams keep taking the
        // no-duplicate fast path; behaviour is unchanged.
        let mut buf = ReorderBuffer::new(8);
        for seq in 0..1000u64 {
            let s = if seq % 2 == 0 { seq + 1 } else { seq - 1 };
            buf.push(s, s as f64).unwrap();
        }
        buf.flush();
        let out = drain(&mut buf);
        assert_eq!(out.len(), 1000);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gap_beyond_depth_is_skipped() {
        let mut buf = ReorderBuffer::new(2);
        buf.push(0, 0.0).unwrap();
        // seq 1 never arrives; 2, 3, 4 pile up past the depth.
        buf.push(2, 2.0).unwrap();
        buf.push(3, 3.0).unwrap();
        buf.push(4, 4.0).unwrap();
        let out = drain(&mut buf);
        assert_eq!(out, vec![0.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn window_results_unaffected_when_disorder_stays_within_a_partial() {
        // The paper's §3.1 statement, end to end: a stream with local
        // swaps, repaired by the buffer, aggregates identically to the
        // in-order stream.
        use swag_core::aggregator::FinalAggregator;
        use swag_core::algorithms::SlickDequeNonInv;
        use swag_core::ops::{AggregateOp, Max};

        let clean: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        // Swap every pair (displacement 1).
        let mut shuffled: Vec<(u64, f64)> = Vec::new();
        for pair in clean.chunks(2) {
            if pair.len() == 2 {
                shuffled.push((shuffled.len() as u64 + 1, pair[1]));
                shuffled.push((shuffled.len() as u64 - 1, pair[0]));
            }
        }

        let op = Max::<f64>::new();
        let mut reference = SlickDequeNonInv::new(op, 8);
        let reference_answers: Vec<_> = clean.iter().map(|v| reference.slide(op.lift(v))).collect();

        let mut buf = ReorderBuffer::new(2);
        let mut repaired = SlickDequeNonInv::new(op, 8);
        let mut answers = Vec::new();
        for &(seq, v) in &shuffled {
            buf.push(seq, v).unwrap();
            while let Some(v) = buf.pop_ready() {
                answers.push(repaired.slide(op.lift(&v)));
            }
        }
        assert_eq!(answers, reference_answers);
    }
}
