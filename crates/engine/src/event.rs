//! The event-time execution path: out-of-order keyed streams, watermarks,
//! and a router-side late-tuple policy.
//!
//! [`ShardedEngine::run_events`] mirrors [`ShardedEngine::run`] for
//! sources whose tuples carry an **event timestamp** and may arrive out
//! of order. The differences, all at the router:
//!
//! * Every routed batch carries the router's current **watermark** — a
//!   promise that no tuple below it will follow. With an explicit
//!   `lateness` bound the watermark is `max routed timestamp − lateness`;
//!   without one the router trusts the source's own
//!   [`low_watermark`](swag_data::event::KeyedEventSource::low_watermark).
//! * Tuples below the watermark are **dropped at the router** — counted
//!   into [`EngineStats::late_tuples`], recorded as
//!   [`EventKind::LateDrop`], and never sent. Dropping before the
//!   hash-partition is what makes the answer stream deterministic: the
//!   drop decision depends only on the (single, ordered) source stream,
//!   never on shard count or batch boundaries.
//!
//! Workers apply each batch through an [`EventProcessor`] and then
//! advance every key to the batch's watermark, emitting the time windows
//! it closed. Per-key answer sequences are therefore identical for any
//! shard count: a key's accepted tuples and its window boundaries fully
//! determine its `(query, window end, value)` stream.
//!
//! The engine-level watermark is the **minimum across shards** of the
//! per-shard watermarks ([`EngineStats::watermark`]) — the frontier every
//! shard has durably passed.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

use swag_core::ops::AggregateOp;
use swag_data::event::KeyedEventSource;
use swag_data::keyed::Key;
use swag_metrics::clock::Stopwatch;
use swag_metrics::QueueDepthGauge;
use swag_stream::{TimeWindowExec, TimeWindowSpec};
use swag_trace::{EventKind, FlightRecorder};

use crate::obs::{sampler_loop, EngineSample, ShardObs, StopGuard};
use crate::shard::{shard_of, EngineRun, ShardedEngine};
use crate::stats::{EngineStats, ShardStats};

/// One routed message on the event path: tuples plus the router's
/// watermark at flush time.
#[derive(Debug)]
pub struct EventBatch {
    /// No tuple in this batch — or any later batch to this shard — has a
    /// timestamp below this.
    pub watermark: u64,
    /// The `(key, event timestamp, value)` tuples, in routing order.
    pub tuples: Vec<(Key, u64, f64)>,
}

/// Per-key event-time processing logic run inside one shard — the
/// event-time sibling of [`ShardProcessor`](crate::ShardProcessor).
pub trait EventProcessor: Send {
    /// The answer type delivered per key.
    type Answer: Send;

    /// Apply a run of timestamped tuples that all belong to `key`, in
    /// routing order. Tuples are guaranteed to be at or above every
    /// watermark previously passed to
    /// [`advance_watermark`](Self::advance_watermark).
    fn apply(&mut self, key: Key, tuples: &[(u64, f64)]);

    /// Raise the watermark for **every** key, appending each window
    /// answer the advance closes as a `(key, answer)` pair. Watermarks
    /// arrive monotone non-decreasing.
    fn advance_watermark(&mut self, watermark: u64, out: &mut Vec<(Key, Self::Answer)>);

    /// End of stream: emit every remaining window holding data.
    fn finish(&mut self, out: &mut Vec<(Key, Self::Answer)>);

    /// Number of distinct keys this processor has seen.
    fn keys(&self) -> usize;

    /// Largest event timestamp accepted so far (for watermark-lag
    /// reporting), or `None` before the first tuple.
    fn max_ts(&self) -> Option<u64>;

    /// Validate the structural invariants of every key's window state,
    /// naming the offending key. Takes `&mut self` because the FiBA
    /// checker repairs lazy aggregate caches as it folds. The default has
    /// no state to check.
    fn check_invariants(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// One [`TimeWindowExec`] (a FiBA finger B-tree plus window bookkeeping)
/// per key. Answers are `(query index, window end, lowered value)`.
///
/// Keys live in a `BTreeMap` so watermark advances visit them in key
/// order — a shard's retained answer stream is deterministic, not
/// hash-order dependent.
#[derive(Debug)]
pub struct KeyedEventWindows<O>
where
    O: AggregateOp<Input = f64>,
{
    op: O,
    specs: Vec<TimeWindowSpec>,
    states: BTreeMap<Key, TimeWindowExec<O>>,
    max_ts: Option<u64>,
    /// Reusable lifted-batch buffer for [`EventProcessor::apply`].
    lift_scratch: Vec<(u64, O::Partial)>,
}

impl<O> KeyedEventWindows<O>
where
    O: AggregateOp<Input = f64> + Clone,
{
    /// The given time windows for every key, aggregated by `op`.
    pub fn new(op: O, specs: Vec<TimeWindowSpec>) -> Self {
        assert!(!specs.is_empty(), "need at least one time window");
        KeyedEventWindows {
            op,
            specs,
            states: BTreeMap::new(),
            max_ts: None,
            lift_scratch: Vec::new(),
        }
    }

    /// The per-key executor, for inspection.
    pub fn state(&self, key: Key) -> Option<&TimeWindowExec<O>> {
        self.states.get(&key)
    }

    /// Every key's executor, for snapshotting (key order).
    pub fn states(&self) -> impl Iterator<Item = (Key, &TimeWindowExec<O>)> {
        self.states.iter().map(|(&k, e)| (k, e))
    }

    /// Rebuild a processor from restored per-key executors — the restore
    /// counterpart of [`states`](Self::states). `max_ts` is recovered
    /// from the executors' trees; keys absent from `states` start fresh
    /// on their first tuple.
    pub fn from_states(
        op: O,
        specs: Vec<TimeWindowSpec>,
        states: impl IntoIterator<Item = (Key, TimeWindowExec<O>)>,
    ) -> Self {
        assert!(!specs.is_empty(), "need at least one time window");
        let states: BTreeMap<Key, TimeWindowExec<O>> = states.into_iter().collect();
        let max_ts = states.values().filter_map(TimeWindowExec::max_ts).max();
        KeyedEventWindows {
            op,
            specs,
            states,
            max_ts,
            lift_scratch: Vec::new(),
        }
    }
}

impl<O> EventProcessor for KeyedEventWindows<O>
where
    O: AggregateOp<Input = f64, Output = f64> + Clone + Send,
    O::Partial: Send,
{
    type Answer = (usize, u64, f64);

    fn apply(&mut self, key: Key, tuples: &[(u64, f64)]) {
        let KeyedEventWindows {
            op,
            specs,
            states,
            max_ts,
            lift_scratch,
        } = self;
        let exec = states
            .entry(key)
            .or_insert_with(|| TimeWindowExec::new(op.clone(), specs.clone()));
        lift_scratch.clear();
        lift_scratch.extend(tuples.iter().map(|&(ts, v)| (ts, op.lift(&v))));
        exec.bulk_insert(lift_scratch);
        for &(ts, _) in tuples {
            *max_ts = Some(max_ts.map_or(ts, |m| m.max(ts)));
        }
    }

    fn advance_watermark(&mut self, watermark: u64, out: &mut Vec<(Key, Self::Answer)>) {
        for (&key, exec) in self.states.iter_mut() {
            for answer in exec.advance_watermark(watermark) {
                out.push((key, answer));
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<(Key, Self::Answer)>) {
        for (&key, exec) in self.states.iter_mut() {
            for answer in exec.finish() {
                out.push((key, answer));
            }
        }
    }

    fn keys(&self) -> usize {
        self.states.len()
    }

    fn max_ts(&self) -> Option<u64> {
        self.max_ts
    }

    fn check_invariants(&mut self) -> Result<(), String> {
        for (key, exec) in self.states.iter_mut() {
            exec.check_invariants()
                .map_err(|violation| format!("key {key}: {violation}"))?;
        }
        Ok(())
    }
}

impl ShardedEngine {
    /// Route up to `limit` timestamped tuples from `source` across the
    /// shards, running `make_processor(shard)` on each worker.
    ///
    /// `lateness`: with `Some(l)`, the router's watermark trails the
    /// largest routed timestamp by `l` and anything below it is dropped
    /// (and counted); with `None` the router trusts the source's own
    /// watermark, which for well-behaved sources drops nothing.
    pub fn run_events<S, P, F>(
        &self,
        source: &mut S,
        limit: u64,
        lateness: Option<u64>,
        make_processor: F,
    ) -> EngineRun<P::Answer>
    where
        S: KeyedEventSource + ?Sized,
        P: EventProcessor,
        F: Fn(usize) -> P + Send + Sync,
    {
        self.run_events_inner(source, limit, lateness, true, make_processor)
            .0
    }

    /// [`run_events`](Self::run_events), but for resident pipelines: open
    /// windows are **not** flushed at drain (no [`EventProcessor::finish`]
    /// — the stream pauses, it does not end), and each shard's drained
    /// processor is handed back in shard order for snapshotting or the
    /// next cycle. Answers still flow from watermark advances as usual.
    pub fn run_events_collecting<S, P, F>(
        &self,
        source: &mut S,
        limit: u64,
        lateness: Option<u64>,
        make_processor: F,
    ) -> (EngineRun<P::Answer>, Vec<P>)
    where
        S: KeyedEventSource + ?Sized,
        P: EventProcessor,
        F: Fn(usize) -> P + Send + Sync,
    {
        self.run_events_inner(source, limit, lateness, false, make_processor)
    }

    fn run_events_inner<S, P, F>(
        &self,
        source: &mut S,
        limit: u64,
        lateness: Option<u64>,
        finish: bool,
        make_processor: F,
    ) -> (EngineRun<P::Answer>, Vec<P>)
    where
        S: KeyedEventSource + ?Sized,
        P: EventProcessor,
        F: Fn(usize) -> P + Send + Sync,
    {
        let config = self.config();
        let shards = config.shards;
        let retain = config.retain_answers;
        let clock = Stopwatch::start();

        let mut senders: Vec<SyncSender<EventBatch>> = Vec::with_capacity(shards);
        let mut inboxes: Vec<Receiver<EventBatch>> = Vec::with_capacity(shards);
        let mut gauges: Vec<QueueDepthGauge> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(config.queue_capacity);
            senders.push(tx);
            inboxes.push(rx);
            gauges.push(QueueDepthGauge::new());
        }
        let mut shard_obs: Vec<Option<ShardObs>> = (0..shards)
            .map(|shard| {
                let mut obs = config.obs.shard_obs(shard, &gauges[shard]);
                if let (Some(o), Some(reg)) = (obs.as_mut(), config.obs.registry.as_ref()) {
                    let label = shard.to_string();
                    o.watermark_lag = Some(reg.gauge(
                        "swag_engine_watermark_lag",
                        "Largest accepted event timestamp minus the shard's watermark",
                        &config.obs.series_labels(&label),
                    ));
                }
                obs
            })
            .collect();
        // The router's own instruments: the late-drop counter (labelled
        // shard="router" — drops happen before partitioning) and a flight
        // recorder narrating drops and watermark advances.
        let late_counter = config.obs.registry.as_ref().map(|reg| {
            reg.counter(
                "swag_engine_late_tuples_total",
                "Tuples dropped at the router for arriving below the watermark",
                &config.obs.series_labels("router"),
            )
        });
        let router_rec =
            (config.obs.trace_capacity > 0).then(|| FlightRecorder::new(config.obs.trace_capacity));

        let samples: Mutex<Vec<EngineSample>> = Mutex::new(Vec::new());
        let make_processor = &make_processor;
        let (shard_stats, answers, processors, late_tuples) = std::thread::scope(|scope| {
            let handles: Vec<_> = inboxes
                .into_iter()
                .enumerate()
                .map(|(shard, inbox)| {
                    let gauge = gauges[shard].clone();
                    let check = config.check_invariants;
                    let obs = shard_obs[shard].take();
                    scope.spawn(move || {
                        event_worker(
                            shard,
                            inbox,
                            gauge,
                            make_processor(shard),
                            retain,
                            check,
                            finish,
                            obs,
                        )
                    })
                })
                .collect();

            let sampler_stop = Arc::new(AtomicBool::new(false));
            let _sampler_guard = StopGuard(sampler_stop.clone());
            if let (Some(interval), Some(registry)) =
                (config.obs.sample_interval, config.obs.registry.as_ref())
            {
                let stop = sampler_stop.clone();
                let registry = registry.clone();
                let samples = &samples;
                scope.spawn(move || sampler_loop(&stop, interval, clock, &registry, samples));
            }

            // The router. The watermark is derived from the stream routed
            // *so far* and only ever rises; a tuple is judged against the
            // watermark before it contributes to it, so a tuple can never
            // be late relative to itself.
            let mut batches: Vec<Vec<(Key, u64, f64)>> = (0..shards)
                .map(|_| Vec::with_capacity(config.batch))
                .collect();
            let mut routed = 0u64;
            let mut late = 0u64;
            let mut max_ts: Option<u64> = None;
            let mut watermark = 0u64;
            while routed < limit {
                let Some((key, ts, value)) = source.next_event() else {
                    break;
                };
                watermark = watermark.max(match lateness {
                    Some(l) => max_ts.map_or(0, |m| m.saturating_sub(l)),
                    None => source.low_watermark(),
                });
                if ts < watermark {
                    late += 1;
                    if let Some(c) = &late_counter {
                        c.inc();
                    }
                    if let Some(rec) = &router_rec {
                        rec.record(EventKind::LateDrop, ts, watermark);
                    }
                    continue;
                }
                max_ts = Some(max_ts.map_or(ts, |m| m.max(ts)));
                let shard = shard_of(key, shards);
                batches[shard].push((key, ts, value));
                routed += 1;
                if batches[shard].len() == config.batch {
                    let tuples =
                        std::mem::replace(&mut batches[shard], Vec::with_capacity(config.batch));
                    gauges[shard].enqueued_n(tuples.len() as u64);
                    if let Some(rec) = &router_rec {
                        rec.record(EventKind::WatermarkAdvance, watermark, tuples.len() as u64);
                    }
                    senders[shard]
                        .send(EventBatch { watermark, tuples })
                        // check:allow a dead worker already poisoned the run; surface it here
                        .expect("event worker exited before drain");
                }
            }
            // The stream is drained: take the frontier's final reading so
            // the closing broadcast carries everything the source promised.
            watermark = watermark.max(match lateness {
                Some(l) => max_ts.map_or(0, |m| m.saturating_sub(l)),
                None => source.low_watermark(),
            });
            for (shard, tuples) in batches.into_iter().enumerate() {
                if !tuples.is_empty() {
                    gauges[shard].enqueued_n(tuples.len() as u64);
                    senders[shard]
                        .send(EventBatch { watermark, tuples })
                        // check:allow a dead worker already poisoned the run; surface it here
                        .expect("event worker exited before drain");
                }
            }
            // Broadcast the final watermark to every shard — including
            // shards no key hashed to — so each one's reported watermark
            // reflects the frontier it durably covers, not merely the
            // tuples it happened to receive.
            for sender in &senders {
                sender
                    .send(EventBatch {
                        watermark,
                        tuples: Vec::new(),
                    })
                    // check:allow a dead worker already poisoned the run; surface it here
                    .expect("event worker exited before drain");
            }
            drop(senders);
            if let (Some(rec), Some(dir)) = (&router_rec, &config.obs.trace_out) {
                // The router is not a shard; its ring gets its own file.
                if let Err(e) = std::fs::create_dir_all(dir).and_then(|_| {
                    std::fs::write(
                        dir.join("flightrec-router.json"),
                        rec.dump_json(usize::MAX).pretty(),
                    )
                }) {
                    eprintln!("swag-engine: router flight-recorder dump failed: {e}");
                }
            }

            let mut shard_stats = Vec::with_capacity(shards);
            let mut answers = Vec::with_capacity(shards);
            let mut processors = Vec::with_capacity(shards);
            for handle in handles {
                // check:allow worker panics must propagate, not be swallowed
                let (stats, shard_answers, processor) =
                    handle.join().expect("event worker panicked");
                shard_stats.push(stats);
                answers.push(shard_answers);
                processors.push(processor);
            }
            (shard_stats, answers, processors, late)
        });

        let mut stats = EngineStats::merge(shard_stats, clock.elapsed());
        stats.late_tuples = late_tuples;
        (
            EngineRun {
                stats,
                answers,
                samples: samples.into_inner().unwrap_or_else(|e| e.into_inner()),
            },
            processors,
        )
    }
}

/// One event worker's loop: apply each batch's tuples (grouped into
/// per-key runs, routing order preserved within a key), then advance
/// every key to the batch's watermark and collect the window answers it
/// closed. After the channel closes, remaining windows are finished.
#[allow(clippy::too_many_arguments)]
fn event_worker<P: EventProcessor>(
    shard: usize,
    inbox: Receiver<EventBatch>,
    gauge: QueueDepthGauge,
    mut processor: P,
    retain: bool,
    check_invariants: bool,
    finish: bool,
    obs: Option<ShardObs>,
) -> (ShardStats, Vec<(Key, P::Answer)>, P) {
    let started = Stopwatch::start();
    let _trace_guard = obs.as_ref().and_then(ShardObs::install_trace);
    let mut tuples = 0u64;
    let mut answers = 0u64;
    let mut batches = 0u64;
    let mut watermark = 0u64;
    let mut retained = Vec::new();
    let mut runs: Vec<(u64, f64)> = Vec::new();
    let mut scratch: Vec<(Key, P::Answer)> = Vec::new();
    // Phase occupancy: one clock read before and after each recv() splits
    // the worker's wall time into blocked-on-channel vs. processing.
    let mut phase = obs.as_ref().map(|_| Stopwatch::start());
    loop {
        let received = inbox.recv();
        if let (Some(o), Some(p)) = (&obs, &mut phase) {
            o.blocked_ns.add(p.elapsed_ns());
            *p = Stopwatch::start();
        }
        let Ok(batch) = received else { break };
        let EventBatch {
            watermark: wm,
            tuples: mut batch_tuples,
        } = batch;
        gauge.dequeued_n(batch_tuples.len() as u64);
        batches += 1;
        if let Some(o) = &obs {
            o.batches.inc();
            o.tuples.add(batch_tuples.len() as u64);
            if let Some(rec) = &o.recorder {
                rec.record(
                    EventKind::BatchReceived,
                    batch_tuples.len() as u64,
                    gauge.depth(),
                );
            }
        }
        // Stable by key: a key's tuples stay in routing order while
        // becoming contiguous.
        batch_tuples.sort_by_key(|&(key, _, _)| key);
        let mut i = 0;
        while i < batch_tuples.len() {
            let key = batch_tuples[i].0;
            let mut j = i + 1;
            while j < batch_tuples.len() && batch_tuples[j].0 == key {
                j += 1;
            }
            runs.clear();
            runs.extend(batch_tuples[i..j].iter().map(|&(_, ts, v)| (ts, v)));
            let run_len = (j - i) as u64;
            let timer = obs
                .as_ref()
                .and_then(|o| o.slide_latency.as_ref())
                .map(|_| Stopwatch::start());
            processor.apply(key, &runs);
            if let Some(o) = &obs {
                if let (Some(hist), Some(timer)) = (&o.slide_latency, timer) {
                    hist.record(timer.elapsed_ns());
                }
                if let Some(rec) = &o.recorder {
                    rec.record(EventKind::Slide, key, run_len);
                }
            }
            tuples += run_len;
            i = j;
        }
        // The watermark closes windows across every key on this shard,
        // including keys untouched by this batch.
        if wm > watermark {
            watermark = wm;
            processor.advance_watermark(wm, &mut scratch);
            if let Some(o) = &obs {
                if let Some(rec) = &o.recorder {
                    rec.record(EventKind::WatermarkAdvance, wm, scratch.len() as u64);
                }
            }
        }
        if let Some(lag) = obs.as_ref().and_then(|o| o.watermark_lag.as_ref()) {
            // Refreshed every batch — not only on watermark advance — so
            // the gauge (and the sampler series built from it) tracks lag
            // even while the watermark is stalled behind late data.
            lag.set(
                processor
                    .max_ts()
                    .map_or(0, |m| m.saturating_sub(watermark)),
            );
        }
        answers += scratch.len() as u64;
        if let Some(o) = &obs {
            o.answers.add(scratch.len() as u64);
        }
        if retain {
            retained.append(&mut scratch);
        } else {
            scratch.clear();
        }
        if let (Some(o), Some(p)) = (&obs, &mut phase) {
            o.busy_ns.add(p.elapsed_ns());
            *p = Stopwatch::start();
        }
    }
    // End of stream: close out every window still holding data. The
    // shard's final watermark durably covers everything it accepted. A
    // resident run skips this — the stream is pausing, not ending — and
    // reports the watermark it actually reached, so open windows survive
    // into the next cycle.
    if finish {
        processor.finish(&mut scratch);
        if let Some(max) = processor.max_ts() {
            watermark = watermark.max(max.saturating_add(1));
        }
    }
    answers += scratch.len() as u64;
    if let Some(o) = &obs {
        o.answers.add(scratch.len() as u64);
        if let Some(lag) = &o.watermark_lag {
            lag.set(0);
        }
    }
    if retain {
        retained.append(&mut scratch);
    }
    if check_invariants {
        let result = processor.check_invariants();
        if let Some(rec) = obs.as_ref().and_then(|o| o.recorder.as_ref()) {
            rec.record(EventKind::InvariantCheck, result.is_ok() as u64, 0);
        }
        if let Err(violation) = result {
            // check:allow a corrupted shard must fail the run loudly, not return bad stats
            panic!("shard {shard}: post-drain invariant check failed: {violation}");
        }
    }
    if let Some(o) = &obs {
        o.keys.set(processor.keys() as u64);
        if let Some(rec) = &o.recorder {
            rec.record(EventKind::Drain, tuples, answers);
        }
        o.dump_on_drain();
    }
    let stats = ShardStats {
        shard,
        tuples,
        answers,
        batches,
        keys: processor.keys(),
        max_queue_depth: gauge.max_depth(),
        watermark,
        elapsed: started.elapsed(),
    };
    (stats, retained, processor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::EngineConfig;
    use std::collections::HashMap;
    use swag_core::ops::Sum;
    use swag_data::event::{DisorderedKeyedSource, KeyedVecEventSource};
    use swag_data::keyed::KeyedVecSource;

    type Answer = (usize, u64, f64);

    fn run_with(
        shards: usize,
        source: &mut dyn KeyedEventSource,
        lateness: Option<u64>,
    ) -> (EngineStats, Vec<(Key, Answer)>) {
        let engine = ShardedEngine::new(EngineConfig {
            shards,
            queue_capacity: 4,
            batch: 16,
            retain_answers: true,
            check_invariants: true,
            ..EngineConfig::default()
        });
        let run = engine.run_events(source, u64::MAX, lateness, |_| {
            KeyedEventWindows::new(
                Sum::<f64>::new(),
                vec![TimeWindowSpec::tumbling(32), TimeWindowSpec::new(64, 16)],
            )
        });
        (run.stats, run.answers.into_iter().flatten().collect())
    }

    fn per_key(answers: &[(Key, Answer)]) -> HashMap<Key, Vec<Answer>> {
        let mut by_key: HashMap<Key, Vec<Answer>> = HashMap::new();
        for &(k, a) in answers {
            by_key.entry(k).or_default().push(a);
        }
        by_key
    }

    fn keyed_tuples(n: usize, keys: u64) -> Vec<(Key, f64)> {
        (0..n)
            .map(|i| ((i as u64 % keys), ((i * 37) % 101) as f64))
            .collect()
    }

    #[test]
    fn disordered_answers_match_across_shard_counts() {
        for disorder in [0u64, 16, 256] {
            let make = || {
                DisorderedKeyedSource::new(
                    KeyedVecSource::new(keyed_tuples(4000, 13)),
                    disorder,
                    99,
                )
            };
            let reference = per_key(&run_with(1, &mut make(), None).1);
            assert!(!reference.is_empty());
            for shards in [2, 8] {
                let (stats, answers) = run_with(shards, &mut make(), None);
                assert_eq!(
                    per_key(&answers),
                    reference,
                    "disorder {disorder}, {shards} shards"
                );
                assert_eq!(stats.late_tuples, 0, "source watermark is trusted");
                assert_eq!(stats.tuples, 4000);
            }
        }
    }

    #[test]
    fn per_key_answers_are_window_ordered_and_complete() {
        let mut source =
            DisorderedKeyedSource::new(KeyedVecSource::new(keyed_tuples(2000, 5)), 64, 7);
        let (_, answers) = run_with(2, &mut source, None);
        for (key, seq) in per_key(&answers) {
            for q in 0..2usize {
                let ends: Vec<u64> = seq.iter().filter(|a| a.0 == q).map(|a| a.1).collect();
                assert!(!ends.is_empty(), "key {key} query {q} emitted nothing");
                assert!(
                    ends.windows(2).all(|w| w[0] < w[1]),
                    "key {key} query {q}: window ends not strictly increasing"
                );
            }
        }
        // Tumbling sums over a complete 0..2000 stamp range reconstruct
        // the whole stream's sum.
        let total: f64 = keyed_tuples(2000, 5).iter().map(|&(_, v)| v).sum();
        let tumbling_sum: f64 = answers
            .iter()
            .filter(|&&(_, (q, _, _))| q == 0)
            .map(|&(_, (_, _, v))| v)
            .sum();
        assert_eq!(tumbling_sum, total);
    }

    #[test]
    fn explicit_lateness_drops_and_counts() {
        // Two tuples arrive 100 behind the frontier; lateness 10 must
        // drop them at the router.
        let events = vec![
            (1, 0, 1.0),
            (1, 50, 2.0),
            (1, 200, 4.0),
            (2, 100, 8.0), // 100 < 200 - 10: late
            (1, 90, 16.0), // late
            (2, 205, 32.0),
        ];
        let mut source = KeyedVecEventSource::new(events, u64::MAX);
        let (stats, answers) = run_with(1, &mut source, Some(10));
        assert_eq!(stats.late_tuples, 2);
        assert_eq!(stats.tuples, 4);
        let accepted_sum: f64 = answers
            .iter()
            .filter(|&&(_, (q, _, _))| q == 0)
            .map(|&(_, (_, _, v))| v)
            .sum();
        assert_eq!(accepted_sum, 1.0 + 2.0 + 4.0 + 32.0);
    }

    #[test]
    fn engine_watermark_is_min_across_shards() {
        let mut source =
            DisorderedKeyedSource::new(KeyedVecSource::new(keyed_tuples(1000, 9)), 16, 3);
        let (stats, _) = run_with(4, &mut source, None);
        let min = stats.shards.iter().map(|s| s.watermark).min().unwrap_or(0);
        assert_eq!(stats.watermark(), min);
        assert!(min >= 1000 - 16, "final watermark {min} never caught up");
    }

    #[test]
    fn limit_caps_routed_tuples_on_the_event_path() {
        let mut source =
            DisorderedKeyedSource::new(KeyedVecSource::new(keyed_tuples(1000, 3)), 8, 1);
        let engine = ShardedEngine::new(EngineConfig::with_shards(2));
        let run = engine.run_events(&mut source, 300, None, |_| {
            KeyedEventWindows::new(Sum::<f64>::new(), vec![TimeWindowSpec::tumbling(16)])
        });
        assert_eq!(run.stats.tuples, 300);
    }
}
