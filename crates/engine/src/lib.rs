//! # swag-engine — sharded, keyed, multi-threaded window aggregation
//!
//! Scales the single-stream SlickDeque platform to keyed streams and
//! multiple cores: a router hash-partitions `(key, value)` tuples across N
//! worker threads over bounded channels ([`shard`]), each worker runs
//! per-key window state — any [`FinalAggregator`] algorithm, or a full
//! multi-ACQ shared plan per key ([`keyed`]) — and per-shard statistics
//! merge into an [`EngineStats`] report ([`stats`]). Live observability —
//! registry-backed metric series, per-shard flight recorders with
//! panic-time dumps, and a dependency-free `/metrics` HTTP endpoint — is
//! opt-in via [`obs`] and [`http`].
//!
//! Determinism: a single router preserves source order and a key lives on
//! exactly one shard, so per-key answers are identical for every shard
//! count.
//!
//! ```
//! use swag_core::algorithms::SlickDequeInv;
//! use swag_core::ops::Sum;
//! use swag_data::keyed::KeyedVecSource;
//! use swag_engine::{EngineConfig, KeyedWindows, ShardedEngine};
//!
//! let engine = ShardedEngine::new(EngineConfig {
//!     shards: 2,
//!     retain_answers: true,
//!     ..EngineConfig::default()
//! });
//! let mut source = KeyedVecSource::new(vec![(1, 2.0), (2, 5.0), (1, 3.0)]);
//! let run = engine.run(&mut source, u64::MAX, |_shard| {
//!     KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 2)
//! });
//! assert_eq!(run.stats.tuples, 3);
//! let mut answers: Vec<_> = run.answers.into_iter().flatten().collect();
//! answers.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! assert_eq!(answers, vec![(1, 2.0), (1, 5.0), (2, 5.0)]);
//! ```
//!
//! [`FinalAggregator`]: swag_core::aggregator::FinalAggregator

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod http;
pub mod keyed;
pub mod obs;
pub mod shard;
pub mod stats;

pub use event::{EventBatch, EventProcessor, KeyedEventWindows};
pub use http::MetricsServer;
pub use keyed::{KeyedPlans, KeyedWindows, ShardProcessor};
pub use obs::{EngineSample, ObservabilityConfig};
pub use shard::{shard_of, EngineConfig, EngineRun, ShardedEngine};
pub use stats::{EngineStats, ShardStats};
