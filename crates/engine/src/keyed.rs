//! Per-key window state: the processors a shard runs.
//!
//! A shard owns one [`ShardProcessor`]; the engine routes every tuple of a
//! key to the same shard, so a processor sees each key's tuples in stream
//! order and keeps one window (or one multi-ACQ plan executor) per key.
//!
//! * [`KeyedWindows`] — one [`FinalAggregator`] per key (any algorithm:
//!   SlickDeque Inv/Non-Inv, TwoStacks, DABA, …), single query, slide 1.
//! * [`KeyedPlans`] — one [`SharedPlanExecutor`] per key for multi-ACQ
//!   shared plans; answers are tagged with the plan's query index.

use std::collections::HashMap;
use swag_core::aggregator::{FinalAggregator, MultiFinalAggregator};
use swag_core::ops::AggregateOp;
use swag_data::keyed::Key;
use swag_stream::{SharedPlanExecutor, Sink};

/// Per-key stream processing logic run inside one shard.
///
/// `process` receives the shard's tuples in arrival order (which, for any
/// single key, is the key's stream order) and appends produced answers to
/// `out`.
pub trait ShardProcessor: Send {
    /// The answer type delivered per key.
    type Answer: Send;

    /// Process one keyed tuple, appending `(key, answer)` pairs to `out`.
    fn process(&mut self, key: Key, value: f64, out: &mut Vec<(Key, Self::Answer)>);

    /// Process a run of consecutive tuples that all belong to `key`, in
    /// stream order. Answers are identical to calling
    /// [`process`](Self::process) once per value; implementations override
    /// this to pay the per-key state look-up once and take the
    /// aggregator's bulk fast paths.
    fn process_run(&mut self, key: Key, values: &[f64], out: &mut Vec<(Key, Self::Answer)>) {
        for &v in values {
            self.process(key, v, out);
        }
    }

    /// Number of distinct keys this processor has seen.
    fn keys(&self) -> usize;

    /// Validate the structural invariants of every key's window state
    /// (paper-level checks via
    /// [`FinalAggregator::check_invariants`]), naming the offending key in
    /// the error. Run by the engine after a graceful drain when
    /// [`EngineConfig::check_invariants`] is set; the default has no state
    /// to check.
    ///
    /// [`EngineConfig::check_invariants`]: crate::EngineConfig::check_invariants
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

/// One single-query sliding window per key, slide 1: every tuple produces
/// one lowered answer for its key.
#[derive(Debug)]
pub struct KeyedWindows<O, A>
where
    O: AggregateOp<Input = f64>,
{
    op: O,
    window: usize,
    states: HashMap<Key, A>,
    /// Reusable lifted-batch buffer for [`ShardProcessor::process_run`].
    lift_scratch: Vec<O::Partial>,
    /// Reusable bulk-answer buffer for [`ShardProcessor::process_run`].
    answer_scratch: Vec<O::Partial>,
}

impl<O, A> KeyedWindows<O, A>
where
    O: AggregateOp<Input = f64> + Clone,
    A: FinalAggregator<O>,
{
    /// Windows of `window` tuples for every key, aggregated by `op`.
    pub fn new(op: O, window: usize) -> Self {
        assert!(window >= 1, "window must be positive");
        KeyedWindows {
            op,
            window,
            states: HashMap::new(),
            lift_scratch: Vec::new(),
            answer_scratch: Vec::new(),
        }
    }

    /// The per-key window state, for inspection.
    pub fn state(&self, key: Key) -> Option<&A> {
        self.states.get(&key)
    }

    /// Every key's window state, for snapshotting (arbitrary order).
    pub fn states(&self) -> impl Iterator<Item = (Key, &A)> {
        self.states.iter().map(|(&k, a)| (k, a))
    }

    /// Rebuild a processor from restored per-key states — the restore
    /// counterpart of [`states`](Self::states). Keys absent from `states`
    /// start fresh on their first tuple, exactly as in a new processor.
    pub fn from_states(op: O, window: usize, states: impl IntoIterator<Item = (Key, A)>) -> Self {
        assert!(window >= 1, "window must be positive");
        KeyedWindows {
            op,
            window,
            states: states.into_iter().collect(),
            lift_scratch: Vec::new(),
            answer_scratch: Vec::new(),
        }
    }
}

impl<O, A> ShardProcessor for KeyedWindows<O, A>
where
    O: AggregateOp<Input = f64, Output = f64> + Clone + Send,
    O::Partial: Send,
    A: FinalAggregator<O> + Send,
{
    type Answer = f64;

    fn process(&mut self, key: Key, value: f64, out: &mut Vec<(Key, f64)>) {
        let agg = self
            .states
            .entry(key)
            .or_insert_with(|| A::with_capacity(self.op.clone(), self.window));
        let partial = agg.slide(self.op.lift(&value));
        out.push((key, self.op.lower(&partial)));
    }

    /// One state look-up for the whole run, then the aggregator's
    /// [`FinalAggregator::bulk_slide`] fast path — answers stay bitwise
    /// identical to per-tuple processing.
    fn process_run(&mut self, key: Key, values: &[f64], out: &mut Vec<(Key, f64)>) {
        let KeyedWindows {
            op,
            window,
            states,
            lift_scratch,
            answer_scratch,
        } = self;
        let agg = states
            .entry(key)
            .or_insert_with(|| A::with_capacity(op.clone(), *window));
        op.lift_slice_into(values, lift_scratch);
        agg.bulk_slide(lift_scratch, answer_scratch);
        out.extend(answer_scratch.drain(..).map(|p| (key, op.lower(&p))));
    }

    fn keys(&self) -> usize {
        self.states.len()
    }

    fn check_invariants(&self) -> Result<(), String> {
        for (key, agg) in &self.states {
            agg.check_invariants()
                .map_err(|violation| format!("key {key}: {violation}"))?;
        }
        Ok(())
    }
}

/// Buffers `(query_idx, partial)` deliveries from a plan executor.
struct VecSink<P>(Vec<(usize, P)>);

impl<P> Sink<P> for VecSink<P> {
    fn deliver(&mut self, query_idx: usize, answer: P) {
        self.0.push((query_idx, answer)); // alloc:amortized per-key state warms up once then stabilizes
    }
}

/// One multi-ACQ [`SharedPlanExecutor`] per key.
///
/// Answers are `(query_idx, lowered_answer)` pairs: each key runs the full
/// shared plan, reporting per registered query at that query's slide.
pub struct KeyedPlans<O, M>
where
    O: AggregateOp<Input = f64> + Clone,
    M: MultiFinalAggregator<O>,
{
    op: O,
    plan: swag_plan::SharedPlan,
    states: HashMap<Key, SharedPlanExecutor<O, M>>,
    /// Reusable per-run delivery buffer for [`ShardProcessor::process_run`].
    sink_scratch: VecSink<O::Partial>,
}

impl<O, M> KeyedPlans<O, M>
where
    O: AggregateOp<Input = f64> + Clone,
    M: MultiFinalAggregator<O>,
{
    /// The given uniform shared plan for every key. Panics (as
    /// [`SharedPlanExecutor::new`] does) if the plan has punctuation edges
    /// or non-uniform partial counts.
    pub fn new(op: O, plan: swag_plan::SharedPlan) -> Self {
        // Validate the plan once, eagerly, instead of on first tuple.
        let _ = SharedPlanExecutor::<O, M>::new(op.clone(), plan.clone());
        KeyedPlans {
            op,
            plan,
            states: HashMap::new(),
            sink_scratch: VecSink(Vec::new()),
        }
    }
}

impl<O, M> ShardProcessor for KeyedPlans<O, M>
where
    O: AggregateOp<Input = f64, Output = f64> + Clone + Send,
    O::Partial: Send,
    M: MultiFinalAggregator<O> + Send,
{
    type Answer = (usize, f64);

    fn process(&mut self, key: Key, value: f64, out: &mut Vec<(Key, (usize, f64))>) {
        let exec = self
            .states
            .entry(key)
            .or_insert_with(|| SharedPlanExecutor::new(self.op.clone(), self.plan.clone())); // alloc:amortized per-key state warms up once then stabilizes
        let mut sink = VecSink(Vec::new());
        exec.push(value, &mut sink); // alloc:amortized per-key state warms up once then stabilizes
        for (qi, partial) in sink.0 {
            out.push((key, (qi, self.op.lower(&partial)))); // alloc:amortized per-key state warms up once then stabilizes
        }
    }

    /// One executor look-up per run, feeding the whole run through
    /// [`SharedPlanExecutor::push_batch`] into a reused delivery buffer.
    fn process_run(&mut self, key: Key, values: &[f64], out: &mut Vec<(Key, (usize, f64))>) {
        let KeyedPlans {
            op,
            plan,
            states,
            sink_scratch,
        } = self;
        let exec = states
            .entry(key)
            .or_insert_with(|| SharedPlanExecutor::new(op.clone(), plan.clone())); // alloc:amortized per-key state warms up once then stabilizes
        sink_scratch.0.clear();
        exec.push_batch(values, sink_scratch);
        for (qi, partial) in sink_scratch.0.drain(..) {
            out.push((key, (qi, op.lower(&partial)))); // alloc:amortized per-key state warms up once then stabilizes
        }
    }

    fn keys(&self) -> usize {
        self.states.len()
    }

    fn check_invariants(&self) -> Result<(), String> {
        for (key, exec) in &self.states {
            exec.aggregator()
                .check_invariants()
                .map_err(|violation| format!("key {key}: {violation}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::algorithms::{SlickDequeInv, SlickDequeNonInv};
    use swag_core::multi::MultiSlickDequeInv;
    use swag_core::ops::{MaxF64, Sum};
    use swag_plan::{Pat, Query, SharedPlan};

    #[test]
    fn keyed_windows_isolate_keys() {
        let mut kw: KeyedWindows<_, SlickDequeInv<_>> = KeyedWindows::new(Sum::<f64>::new(), 2);
        let mut out = Vec::new();
        kw.process(1, 10.0, &mut out);
        kw.process(2, 100.0, &mut out);
        kw.process(1, 1.0, &mut out);
        kw.process(1, 2.0, &mut out); // 10.0 expires from key 1's window
        assert_eq!(out, vec![(1, 10.0), (2, 100.0), (1, 11.0), (1, 3.0)]);
        assert_eq!(kw.keys(), 2);
    }

    #[test]
    fn keyed_windows_max_uses_monotone_deque() {
        let mut kw: KeyedWindows<_, SlickDequeNonInv<_>> = KeyedWindows::new(MaxF64::new(), 3);
        let mut out = Vec::new();
        for (k, v) in [(5, 1.0), (5, 9.0), (5, 2.0), (5, 0.5)] {
            kw.process(k, v, &mut out);
        }
        let answers: Vec<f64> = out.iter().map(|&(_, a)| a).collect();
        assert_eq!(answers, vec![1.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn process_run_matches_per_tuple_process() {
        let values: Vec<f64> = (0..50).map(|i| ((i * 31) % 19) as f64).collect();

        let mut scalar: KeyedWindows<_, SlickDequeNonInv<_>> = KeyedWindows::new(MaxF64::new(), 5);
        let mut expected = Vec::new();
        for &v in &values {
            scalar.process(3, v, &mut expected);
        }

        let mut bulk: KeyedWindows<_, SlickDequeNonInv<_>> = KeyedWindows::new(MaxF64::new(), 5);
        let mut got = Vec::new();
        for chunk in values.chunks(7) {
            bulk.process_run(3, chunk, &mut got);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn keyed_plans_process_run_matches_process() {
        let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
        let op = Sum::<f64>::new();
        let values: Vec<f64> = (0..40).map(|i| ((i * 11) % 13) as f64).collect();

        let mut scalar: KeyedPlans<_, MultiSlickDequeInv<_>> = KeyedPlans::new(op, plan.clone());
        let mut expected = Vec::new();
        for &v in &values {
            scalar.process(9, v, &mut expected);
        }

        let mut bulk: KeyedPlans<_, MultiSlickDequeInv<_>> = KeyedPlans::new(op, plan);
        let mut got = Vec::new();
        for chunk in values.chunks(9) {
            bulk.process_run(9, chunk, &mut got);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn keyed_plans_match_unkeyed_executor_per_key() {
        let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
        let op = Sum::<f64>::new();
        let mut kp: KeyedPlans<_, MultiSlickDequeInv<_>> = KeyedPlans::new(op, plan.clone());

        let stream: Vec<f64> = (0..32).map(|i| ((i * 13) % 17) as f64).collect();
        // Interleave two keys with the same per-key values.
        let mut out = Vec::new();
        for &v in &stream {
            kp.process(7, v, &mut out);
            kp.process(8, v, &mut out);
        }

        // Reference: one unkeyed executor over the same values.
        let mut reference = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan);
        let mut expected = VecSink(Vec::new());
        for &v in &stream {
            reference.push(v, &mut expected);
        }
        for key in [7u64, 8] {
            let got: Vec<(usize, f64)> = out
                .iter()
                .filter(|&&(k, _)| k == key)
                .map(|&(_, a)| a)
                .collect();
            assert_eq!(got, expected.0, "key {key}");
        }
    }
}
