//! The sharded engine: hash-partitioned, multi-threaded keyed execution.
//!
//! One router (the calling thread) pulls `(key, value)` tuples from a
//! [`KeyedSource`] and hash-partitions them across `shards` worker threads
//! over bounded channels. Tuples are batched to amortise channel overhead;
//! a full channel blocks the router (backpressure), so a slow shard slows
//! admission instead of growing memory without bound. Each worker owns one
//! [`ShardProcessor`] holding the per-key window state for every key routed
//! to it.
//!
//! Shutdown is graceful by construction: when the source runs dry (or the
//! tuple limit is reached) the router flushes its partial batches and drops
//! the senders; each worker drains its queue to completion and returns its
//! [`ShardStats`].
//!
//! Because a single router preserves source order and a key maps to exactly
//! one shard, every key's tuples are processed in stream order — per-key
//! answers are identical for any shard count.

use std::sync::atomic::AtomicBool;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};

use swag_data::keyed::{Key, KeyedSource};
use swag_data::prng::mix64;
use swag_metrics::clock::Stopwatch;
use swag_metrics::QueueDepthGauge;
use swag_trace::EventKind;

use crate::keyed::ShardProcessor;
use crate::obs::{sampler_loop, EngineSample, ObservabilityConfig, ShardObs, StopGuard};
use crate::stats::{EngineStats, ShardStats};

/// Tuning knobs for a sharded run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count (≥ 1). Keys are assigned by `mix64(key) % shards`.
    pub shards: usize,
    /// Bounded channel capacity per shard, in batches. The router blocks
    /// when a shard's queue is full — this is the backpressure bound.
    pub queue_capacity: usize,
    /// Tuples per channel message. Larger batches amortise channel
    /// synchronisation; smaller ones tighten the backpressure loop.
    pub batch: usize,
    /// Keep every `(key, answer)` pair a shard produces (for tests and
    /// result inspection). Leave off for throughput runs: answers are
    /// counted but not stored.
    pub retain_answers: bool,
    /// Run [`ShardProcessor::check_invariants`] on every shard after its
    /// graceful drain, panicking the worker on a violation. O(total window
    /// state) at shutdown; leave off for throughput runs.
    pub check_invariants: bool,
    /// Live observability: metric registry, per-shard flight recorders,
    /// and the queue-depth sampler. Default: all off, zero hot-path cost.
    pub obs: ObservabilityConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 2,
            queue_capacity: 64,
            batch: 256,
            retain_answers: false,
            check_invariants: false,
            obs: ObservabilityConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with the given shard count and default queue/batch sizes.
    pub fn with_shards(shards: usize) -> Self {
        EngineConfig {
            shards,
            ..EngineConfig::default()
        }
    }

    /// Check every knob is usable, with a message naming the bad field.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards < 1 {
            return Err(format!(
                "engine config: `shards` must be at least 1 (got {})",
                self.shards
            ));
        }
        if self.queue_capacity < 1 {
            return Err(format!(
                "engine config: `queue_capacity` must be at least 1 batch (got {})",
                self.queue_capacity
            ));
        }
        if self.batch < 1 {
            return Err(format!(
                "engine config: `batch` must be at least 1 tuple (got {})",
                self.batch
            ));
        }
        Ok(())
    }
}

/// The outcome of [`ShardedEngine::run`].
#[derive(Debug)]
pub struct EngineRun<A> {
    /// Merged run statistics.
    pub stats: EngineStats,
    /// Retained answers, one `Vec` per shard in that shard's processing
    /// order (per-key order equals stream order). Empty unless
    /// [`EngineConfig::retain_answers`] was set.
    pub answers: Vec<Vec<(Key, A)>>,
    /// Periodic queue-depth/throughput observations, in time order. Empty
    /// unless [`ObservabilityConfig::sample_interval`] and a registry were
    /// both set.
    pub samples: Vec<EngineSample>,
}

/// The sharded keyed execution engine.
///
/// Construct with a config, then [`run`](Self::run) it over a keyed source
/// with a factory producing one [`ShardProcessor`] per shard.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    config: EngineConfig,
}

/// The shard a key is routed to under `shards` workers: stable for a given
/// key and shard count, scrambled by [`mix64`] so sequential keys spread.
pub fn shard_of(key: Key, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    (mix64(key) % shards as u64) as usize
}

impl ShardedEngine {
    /// An engine with the given configuration. Panics on zero shards,
    /// queue capacity, or batch size; use [`try_new`](Self::try_new) to
    /// handle bad configs without panicking.
    pub fn new(config: EngineConfig) -> Self {
        match Self::try_new(config) {
            Ok(engine) => engine,
            // check:allow documented panicking constructor; try_new is the fallible form
            Err(msg) => panic!("{msg}"),
        }
    }

    /// An engine with the given configuration, or the
    /// [`EngineConfig::validate`] error naming the bad knob.
    pub fn try_new(config: EngineConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(ShardedEngine { config })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Route up to `limit` tuples from `source` across the shards, running
    /// `make_processor(shard)` on each worker. Returns when the source is
    /// exhausted (or the limit reached) and every worker has drained.
    pub fn run<S, P, F>(
        &self,
        source: &mut S,
        limit: u64,
        make_processor: F,
    ) -> EngineRun<P::Answer>
    where
        S: KeyedSource + ?Sized,
        P: ShardProcessor,
        F: Fn(usize) -> P + Send + Sync,
    {
        self.run_collecting(source, limit, make_processor).0
    }

    /// [`run`](Self::run), but additionally hands back each shard's
    /// drained processor (in shard order) instead of dropping it.
    ///
    /// This is the resident-service hook: after a graceful drain every
    /// queue is empty and each processor sits at a batch boundary, so the
    /// returned states are a **drain-consistent** cut of the whole engine
    /// — the snapshot layer serializes them, and the next cycle feeds
    /// them back through `make_processor`.
    pub fn run_collecting<S, P, F>(
        &self,
        source: &mut S,
        limit: u64,
        make_processor: F,
    ) -> (EngineRun<P::Answer>, Vec<P>)
    where
        S: KeyedSource + ?Sized,
        P: ShardProcessor,
        F: Fn(usize) -> P + Send + Sync,
    {
        let shards = self.config.shards;
        let retain = self.config.retain_answers;
        let clock = Stopwatch::start();

        let mut senders: Vec<SyncSender<Vec<(Key, f64)>>> = Vec::with_capacity(shards);
        let mut inboxes: Vec<Receiver<Vec<(Key, f64)>>> = Vec::with_capacity(shards);
        let mut gauges: Vec<QueueDepthGauge> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel(self.config.queue_capacity);
            senders.push(tx);
            inboxes.push(rx);
            gauges.push(QueueDepthGauge::new());
        }
        // Instrument bundles are built here (registry registration is
        // locked) and moved onto the workers; `None` when obs is off.
        let mut shard_obs: Vec<Option<ShardObs>> = (0..shards)
            .map(|shard| self.config.obs.shard_obs(shard, &gauges[shard]))
            .collect();

        let samples: Mutex<Vec<EngineSample>> = Mutex::new(Vec::new());
        let make_processor = &make_processor;
        let (shard_stats, answers, processors) = std::thread::scope(|scope| {
            let handles: Vec<_> = inboxes
                .into_iter()
                .enumerate()
                .map(|(shard, inbox)| {
                    let gauge = gauges[shard].clone();
                    let check = self.config.check_invariants;
                    let obs = shard_obs[shard].take();
                    scope.spawn(move || {
                        shard_worker(
                            shard,
                            inbox,
                            gauge,
                            make_processor(shard),
                            retain,
                            check,
                            obs,
                        )
                    })
                })
                .collect();

            // The sampler rides in the same scope; its StopGuard stops it
            // even when a worker panic unwinds past the joins below, so
            // the scope's implicit join can never deadlock on it.
            let sampler_stop = Arc::new(AtomicBool::new(false));
            let _sampler_guard = StopGuard(sampler_stop.clone());
            if let (Some(interval), Some(registry)) = (
                self.config.obs.sample_interval,
                self.config.obs.registry.as_ref(),
            ) {
                let stop = sampler_stop.clone();
                let registry = registry.clone();
                let samples = &samples;
                scope.spawn(move || sampler_loop(&stop, interval, clock, &registry, samples));
            }

            // The router: batch tuples per shard, block on full queues.
            let mut batches: Vec<Vec<(Key, f64)>> = (0..shards)
                .map(|_| Vec::with_capacity(self.config.batch))
                .collect();
            let mut routed = 0u64;
            while routed < limit {
                let Some((key, value)) = source.next_tuple() else {
                    break;
                };
                let shard = shard_of(key, shards);
                batches[shard].push((key, value));
                routed += 1;
                if batches[shard].len() == self.config.batch {
                    let batch = std::mem::replace(
                        &mut batches[shard],
                        Vec::with_capacity(self.config.batch),
                    );
                    gauges[shard].enqueued_n(batch.len() as u64);
                    senders[shard]
                        .send(batch)
                        // check:allow a dead worker already poisoned the run; surface it here
                        .expect("shard worker exited before drain");
                }
            }
            for (shard, batch) in batches.into_iter().enumerate() {
                if !batch.is_empty() {
                    gauges[shard].enqueued_n(batch.len() as u64);
                    senders[shard]
                        .send(batch)
                        // check:allow a dead worker already poisoned the run; surface it here
                        .expect("shard worker exited before drain");
                }
            }
            // Dropping the senders signals end-of-stream; workers drain
            // their queues and return.
            drop(senders);

            let mut shard_stats = Vec::with_capacity(shards);
            let mut answers = Vec::with_capacity(shards);
            let mut processors = Vec::with_capacity(shards);
            for handle in handles {
                // check:allow worker panics must propagate, not be swallowed
                let (stats, shard_answers, processor) =
                    handle.join().expect("shard worker panicked");
                shard_stats.push(stats);
                answers.push(shard_answers);
                processors.push(processor);
            }
            (shard_stats, answers, processors)
        });

        (
            EngineRun {
                stats: EngineStats::merge(shard_stats, clock.elapsed()),
                answers,
                samples: samples.into_inner().unwrap_or_else(|e| e.into_inner()),
            },
            processors,
        )
    }
}

/// One worker's loop: drain batches until the channel closes.
///
/// Each received batch is grouped into per-key runs with a stable sort
/// (tuples of one key keep their stream order while becoming contiguous),
/// so a key pays one [`ShardProcessor::process_run`] call — one state
/// look-up plus the aggregator's bulk path — per batch instead of one
/// `process` call per tuple. Per-key answer sequences are unchanged;
/// only the interleaving of different keys inside a batch may differ.
///
/// With an instrument bundle, the worker additionally maintains its
/// registry series, times each slide into the latency histogram, and
/// narrates its life into the flight recorder — batch received, per-key
/// slide (plus a bulk-path marker for multi-tuple runs), the post-drain
/// invariant check, and the final drain event. A panic anywhere in the
/// loop dumps the ring via `swag-trace`'s hook (the registration guard
/// lives for the whole function).
fn shard_worker<P: ShardProcessor>(
    shard: usize,
    inbox: Receiver<Vec<(Key, f64)>>,
    gauge: QueueDepthGauge,
    mut processor: P,
    retain: bool,
    check_invariants: bool,
    obs: Option<ShardObs>,
) -> (ShardStats, Vec<(Key, P::Answer)>, P) {
    let started = Stopwatch::start();
    let _trace_guard = obs.as_ref().and_then(ShardObs::install_trace);
    let mut tuples = 0u64;
    let mut answers = 0u64;
    let mut batches = 0u64;
    let mut retained = Vec::new();
    // Reused across recv iterations: per-run values and per-batch answers.
    let mut values: Vec<f64> = Vec::new();
    let mut scratch = Vec::new();
    // Phase occupancy: one clock read before and after each recv() splits
    // the worker's wall time into blocked-on-channel vs. processing.
    let mut phase = obs.as_ref().map(|_| Stopwatch::start());
    loop {
        let batch = inbox.recv();
        if let (Some(o), Some(p)) = (&obs, &mut phase) {
            o.blocked_ns.add(p.elapsed_ns());
            *p = Stopwatch::start();
        }
        let Ok(mut batch) = batch else { break };
        gauge.dequeued_n(batch.len() as u64);
        batches += 1;
        if let Some(o) = &obs {
            o.batches.inc();
            o.tuples.add(batch.len() as u64);
            if let Some(rec) = &o.recorder {
                rec.record(EventKind::BatchReceived, batch.len() as u64, gauge.depth());
            }
        }
        batch.sort_by_key(|&(key, _)| key);
        let mut i = 0;
        while i < batch.len() {
            let key = batch[i].0;
            let mut j = i + 1;
            while j < batch.len() && batch[j].0 == key {
                j += 1;
            }
            values.clear();
            values.extend(batch[i..j].iter().map(|&(_, v)| v));
            let run_len = (j - i) as u64;
            // Two clock reads per slide, only when someone is scraping
            // the histogram.
            let timer = obs
                .as_ref()
                .and_then(|o| o.slide_latency.as_ref())
                .map(|_| Stopwatch::start());
            processor.process_run(key, &values, &mut scratch);
            if let Some(o) = &obs {
                if let (Some(hist), Some(timer)) = (&o.slide_latency, timer) {
                    hist.record(timer.elapsed_ns());
                }
                if let Some(rec) = &o.recorder {
                    rec.record(EventKind::Slide, key, run_len);
                    if run_len > 1 {
                        // The run took the aggregator's bulk
                        // insert/evict fast path.
                        rec.record(EventKind::BulkEvict, key, run_len);
                    }
                }
            }
            tuples += run_len;
            i = j;
        }
        // Count answers as produced, before the retain decision — the
        // tally is the same whether or not answers are kept.
        answers += scratch.len() as u64;
        if let Some(o) = &obs {
            o.answers.add(scratch.len() as u64);
        }
        if retain {
            retained.append(&mut scratch);
        } else {
            scratch.clear();
        }
        if let (Some(o), Some(p)) = (&obs, &mut phase) {
            o.busy_ns.add(p.elapsed_ns());
            *p = Stopwatch::start();
        }
    }
    if check_invariants {
        let result = processor.check_invariants();
        if let Some(rec) = obs.as_ref().and_then(|o| o.recorder.as_ref()) {
            rec.record(EventKind::InvariantCheck, result.is_ok() as u64, 0);
        }
        if let Err(violation) = result {
            // check:allow a corrupted shard must fail the run loudly, not return bad stats
            panic!("shard {shard}: post-drain invariant check failed: {violation}");
        }
    }
    if let Some(o) = &obs {
        o.keys.set(processor.keys() as u64);
        if let Some(rec) = &o.recorder {
            rec.record(EventKind::Drain, tuples, answers);
        }
        o.dump_on_drain();
    }
    let stats = ShardStats {
        shard,
        tuples,
        answers,
        batches,
        keys: processor.keys(),
        max_queue_depth: gauge.max_depth(),
        watermark: 0,
        elapsed: started.elapsed(),
    };
    (stats, retained, processor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::KeyedWindows;
    use std::collections::HashMap;
    use swag_core::algorithms::SlickDequeInv;
    use swag_core::ops::Sum;
    use swag_data::keyed::KeyedVecSource;

    fn tuples(n: u64, keys: u64) -> Vec<(Key, f64)> {
        (0..n).map(|i| (i % keys, (i % 13) as f64)).collect()
    }

    fn run_with(shards: usize, input: &[(Key, f64)]) -> Vec<(Key, f64)> {
        let engine = ShardedEngine::new(EngineConfig {
            shards,
            queue_capacity: 4,
            batch: 8,
            retain_answers: true,
            check_invariants: true,
            ..EngineConfig::default()
        });
        let mut source = KeyedVecSource::new(input.to_vec());
        let run = engine.run(&mut source, u64::MAX, |_| {
            KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 16)
        });
        assert_eq!(run.stats.tuples, input.len() as u64);
        assert_eq!(run.stats.answers, input.len() as u64);
        run.answers.into_iter().flatten().collect()
    }

    fn per_key(answers: &[(Key, f64)]) -> HashMap<Key, Vec<f64>> {
        let mut by_key: HashMap<Key, Vec<f64>> = HashMap::new();
        for &(k, a) in answers {
            by_key.entry(k).or_default().push(a);
        }
        by_key
    }

    #[test]
    fn sharded_answers_match_single_shard_per_key() {
        let input = tuples(5000, 37);
        let reference = per_key(&run_with(1, &input));
        for shards in [2, 3, 8] {
            assert_eq!(
                per_key(&run_with(shards, &input)),
                reference,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn keys_never_span_shards() {
        let input = tuples(2000, 10);
        let engine = ShardedEngine::new(EngineConfig {
            shards: 4,
            queue_capacity: 2,
            batch: 16,
            retain_answers: true,
            check_invariants: true,
            ..EngineConfig::default()
        });
        let mut source = KeyedVecSource::new(input);
        let run = engine.run(&mut source, u64::MAX, |_| {
            KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 4)
        });
        for (shard, answers) in run.answers.iter().enumerate() {
            for &(key, _) in answers {
                assert_eq!(shard_of(key, 4), shard);
            }
        }
        assert_eq!(run.stats.keys(), 10);
    }

    #[test]
    fn invalid_configs_are_rejected_with_field_names() {
        let bad_shards = EngineConfig {
            shards: 0,
            ..EngineConfig::default()
        };
        let err = ShardedEngine::try_new(bad_shards).unwrap_err();
        assert!(err.contains("`shards`"), "{err}");

        let bad_queue = EngineConfig {
            queue_capacity: 0,
            ..EngineConfig::default()
        };
        let err = ShardedEngine::try_new(bad_queue).unwrap_err();
        assert!(err.contains("`queue_capacity`"), "{err}");

        let bad_batch = EngineConfig {
            batch: 0,
            ..EngineConfig::default()
        };
        let err = ShardedEngine::try_new(bad_batch).unwrap_err();
        assert!(err.contains("`batch`"), "{err}");

        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn answers_counted_without_retention_and_batches_tracked() {
        let input = tuples(1000, 7);
        let engine = ShardedEngine::new(EngineConfig {
            shards: 2,
            queue_capacity: 4,
            batch: 50,
            retain_answers: false,
            check_invariants: true,
            ..EngineConfig::default()
        });
        let mut source = KeyedVecSource::new(input);
        let run = engine.run(&mut source, u64::MAX, |_| {
            KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 16)
        });
        // Slide-1 windows answer once per tuple even when nothing is kept.
        assert_eq!(run.stats.answers, 1000);
        // 1000 tuples over 50-tuple batches: 20 full messages plus at most
        // one partial flush per shard.
        assert!(
            (20..=22).contains(&run.stats.batches),
            "batches = {}",
            run.stats.batches
        );
        let per_batch = run.stats.tuples_per_batch();
        assert!(per_batch > 40.0 && per_batch <= 50.0, "{per_batch}");
    }

    #[test]
    fn limit_caps_routed_tuples() {
        let input = tuples(1000, 5);
        let engine = ShardedEngine::new(EngineConfig::with_shards(2));
        let mut source = KeyedVecSource::new(input);
        let run = engine.run(&mut source, 300, |_| {
            KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 8)
        });
        assert_eq!(run.stats.tuples, 300);
        assert!(
            run.answers.iter().all(|a| a.is_empty()),
            "answers not retained"
        );
    }

    #[test]
    fn queue_depth_watermark_is_observed() {
        let input = tuples(4096, 3);
        let engine = ShardedEngine::new(EngineConfig {
            shards: 1,
            queue_capacity: 2,
            batch: 32,
            retain_answers: false,
            check_invariants: true,
            ..EngineConfig::default()
        });
        let mut source = KeyedVecSource::new(input);
        let run = engine.run(&mut source, u64::MAX, |_| {
            KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 64)
        });
        let depth = run.stats.max_queue_depth();
        assert!(
            depth >= 32,
            "at least one full batch was queued, saw {depth}"
        );
    }
}
