//! Live observability for the sharded engine: metric registry wiring,
//! per-shard flight recorders, and the queue-depth/throughput sampler.
//!
//! Everything here is opt-in via [`ObservabilityConfig`] (default: all
//! off, zero hot-path cost — the worker's instrument handle is an
//! `Option` checked once per batch). When a registry is attached the
//! engine maintains these series:
//!
//! | series                          | kind      | labels  |
//! |---------------------------------|-----------|---------|
//! | `swag_engine_tuples_total`      | counter   | `shard` |
//! | `swag_engine_answers_total`     | counter   | `shard` |
//! | `swag_engine_batches_total`     | counter   | `shard` |
//! | `swag_engine_keys`              | gauge     | `shard` |
//! | `swag_engine_queue_depth`       | gauge     | `shard` |
//! | `swag_engine_queue_depth_peak`  | gauge     | `shard` |
//! | `swag_engine_busy_ns_total`     | counter   | `shard` |
//! | `swag_engine_blocked_ns_total`  | counter   | `shard` |
//! | `swag_slide_latency_ns`         | histogram | `shard` |
//!
//! The busy/blocked pair is the worker's phase occupancy: nanoseconds
//! spent processing batches vs. parked in `recv()` waiting on the
//! channel. Two clock reads per *batch* (not per tuple) keep it cheap
//! enough to stay on whenever observability is enabled; the ratio says
//! immediately whether a slow pipeline is compute-bound (busy ≫ blocked)
//! or starved/backpressured (blocked ≫ busy).
//!
//! Counters are cumulative across runs sharing one registry (Prometheus
//! semantics); per-run exact numbers stay in [`EngineStats`]. The slide
//! latency histogram times each [`ShardProcessor::process_run`] call —
//! the paper's per-slide latency, measured where the slide happens.
//!
//! With a trace capacity set, each worker keeps a [`FlightRecorder`] ring
//! of its recent events (batch received, slide, bulk-path taken,
//! invariant check, drain) and dumps it to
//! `<trace_out>/flightrec-<shard>.json` on graceful drain *and* — via
//! `swag-trace`'s panic hook — when the worker panics, so a crashed
//! shard's last moments are always on disk.
//!
//! [`EngineStats`]: crate::EngineStats
//! [`ShardProcessor::process_run`]: crate::ShardProcessor::process_run

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use swag_metrics::clock::Stopwatch;
use swag_metrics::registry::{Counter, Gauge, Histogram, MetricRegistry};
use swag_metrics::{Json, QueueDepthGauge, ToJson};
use swag_trace::hook::TraceGuard;
use swag_trace::FlightRecorder;

/// What the engine should observe about itself during a run.
#[derive(Debug, Clone, Default)]
pub struct ObservabilityConfig {
    /// Registry to maintain the engine's metric series in. Share one
    /// registry between the engine and a
    /// [`MetricsServer`](crate::MetricsServer) to expose a live run.
    pub registry: Option<Arc<MetricRegistry>>,
    /// Flight-recorder ring capacity per shard, in events; 0 disables
    /// tracing.
    pub trace_capacity: usize,
    /// Directory to dump `flightrec-<shard>.json` files into, on graceful
    /// drain and on worker panic. With `None` the rings stay in memory:
    /// events (including the panic event) are recorded but never written
    /// out.
    pub trace_out: Option<PathBuf>,
    /// When set (and a registry is attached), a sampler thread snapshots
    /// queue depths and tuple throughput at this interval into
    /// [`EngineRun::samples`](crate::EngineRun::samples).
    pub sample_interval: Option<Duration>,
    /// Extra labels prepended to every engine series, before the `shard`
    /// label. Lets an embedder attribute series to a scope of its own —
    /// the resident service runs one engine per pipeline against one
    /// shared registry and sets `[("pipeline", name)]` here, so slide
    /// latency and phase occupancy stay separable per pipeline.
    pub labels: Vec<(String, String)>,
}

impl ObservabilityConfig {
    /// True when any instrumentation is switched on.
    pub fn enabled(&self) -> bool {
        self.registry.is_some() || self.trace_capacity > 0
    }

    /// The full label set for a series scoped to `shard` (which may also
    /// be a role like `"router"`): the embedder's extra labels, then
    /// `shard`.
    pub(crate) fn series_labels<'a>(&'a self, shard: &'a str) -> Vec<(&'a str, &'a str)> {
        let mut labels: Vec<(&str, &str)> = self
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        labels.push(("shard", shard));
        labels
    }

    /// Build shard `shard`'s instrument bundle, or `None` when everything
    /// is off. Called by the engine once per worker at spawn time; also
    /// registers the shard's queue-depth gauge facets.
    pub(crate) fn shard_obs(&self, shard: usize, gauge: &QueueDepthGauge) -> Option<ShardObs> {
        if !self.enabled() {
            return None;
        }
        let label = shard.to_string();
        let labels = self.series_labels(&label);
        let labels = labels.as_slice();
        let (tuples, answers, batches, keys, busy_ns, blocked_ns, slide_latency) =
            match &self.registry {
                Some(reg) => {
                    reg.queue_depth(
                        "swag_engine_queue_depth",
                        "swag_engine_queue_depth_peak",
                        "Inbound queue occupancy in tuples",
                        labels,
                        gauge,
                    );
                    (
                        reg.counter("swag_engine_tuples_total", "Keyed tuples processed", labels),
                        reg.counter(
                            "swag_engine_answers_total",
                            "Window answers produced",
                            labels,
                        ),
                        reg.counter(
                            "swag_engine_batches_total",
                            "Channel batches received",
                            labels,
                        ),
                        reg.gauge("swag_engine_keys", "Distinct keys resident", labels),
                        reg.counter(
                            "swag_engine_busy_ns_total",
                            "Nanoseconds the worker spent processing batches",
                            labels,
                        ),
                        reg.counter(
                            "swag_engine_blocked_ns_total",
                            "Nanoseconds the worker spent blocked on its channel",
                            labels,
                        ),
                        Some(reg.histogram(
                            "swag_slide_latency_ns",
                            "Latency of one per-key slide (process_run call) in nanoseconds",
                            labels,
                        )),
                    )
                }
                // Trace-only runs still tally into free-standing instruments;
                // the atomics are the cheapest uniform representation.
                None => (
                    Counter::new(),
                    Counter::new(),
                    Counter::new(),
                    Gauge::new(),
                    Counter::new(),
                    Counter::new(),
                    None,
                ),
            };
        Some(ShardObs {
            shard,
            tuples,
            answers,
            batches,
            keys,
            busy_ns,
            blocked_ns,
            slide_latency,
            watermark_lag: None,
            recorder: (self.trace_capacity > 0).then(|| FlightRecorder::new(self.trace_capacity)),
            dump_dir: self.trace_out.clone(),
        })
    }
}

/// One worker's instrument bundle (built on the spawning thread, used on
/// the worker thread).
pub(crate) struct ShardObs {
    pub(crate) shard: usize,
    pub(crate) tuples: Counter,
    pub(crate) answers: Counter,
    pub(crate) batches: Counter,
    pub(crate) keys: Gauge,
    /// Phase occupancy: nanoseconds processing batches. Timed once per
    /// batch, so always on when any observability is.
    pub(crate) busy_ns: Counter,
    /// Phase occupancy: nanoseconds blocked in `recv()`.
    pub(crate) blocked_ns: Counter,
    /// Present only with a registry: per-slide timing costs two clock
    /// reads per `process_run`, so it is tied to someone scraping.
    pub(crate) slide_latency: Option<Histogram>,
    /// Event-time runs only: `swag_engine_watermark_lag` (largest
    /// accepted timestamp minus the shard watermark). Attached by
    /// `run_events` after construction; `None` on the arrival-order path.
    pub(crate) watermark_lag: Option<Gauge>,
    pub(crate) recorder: Option<FlightRecorder>,
    pub(crate) dump_dir: Option<PathBuf>,
}

impl ShardObs {
    /// Register the calling (worker) thread with the panic hook so a
    /// crash dumps this shard's ring. Hold the guard for the worker's
    /// lifetime.
    pub(crate) fn install_trace(&self) -> Option<TraceGuard> {
        self.recorder.as_ref().map(|rec| {
            swag_trace::hook::register_shard(self.shard, rec.clone(), self.dump_dir.clone())
        })
    }

    /// Write this shard's ring to `dump_dir` after a graceful drain.
    pub(crate) fn dump_on_drain(&self) {
        if let (Some(rec), Some(dir)) = (&self.recorder, &self.dump_dir) {
            if let Err(e) = rec.dump_to_dir(self.shard, dir) {
                eprintln!(
                    "swag-engine: shard {} flight-recorder dump failed: {e}",
                    self.shard
                );
            }
        }
    }
}

/// One sampler observation of the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSample {
    /// Nanoseconds since the run started.
    pub t_ns: u64,
    /// Summed live queue occupancy across shards, in tuples.
    pub queue_depth: u64,
    /// Cumulative tuples processed (`swag_engine_tuples_total` summed
    /// across shards) at sample time.
    pub tuples: u64,
    /// Worst-shard watermark lag (`swag_engine_watermark_lag` max across
    /// shards) at sample time; 0 on arrival-order runs. Sampled every
    /// interval — not only when a batch advances a watermark — so an
    /// idle or stalled pipeline's lag is still visible in the series.
    pub watermark_lag: u64,
}

impl ToJson for EngineSample {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t_ns", Json::UInt(self.t_ns)),
            ("queue_depth", Json::UInt(self.queue_depth)),
            ("tuples", Json::UInt(self.tuples)),
            ("watermark_lag", Json::UInt(self.watermark_lag)),
        ])
    }
}

/// Sets the sampler's stop flag when dropped — including during an
/// unwind, so a panicking worker cannot leave the sampler thread spinning
/// and deadlock the engine's `thread::scope` join.
pub(crate) struct StopGuard(pub(crate) Arc<AtomicBool>);

impl Drop for StopGuard {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// The sampler loop: runs on its own scoped thread, appending one
/// [`EngineSample`] per interval until the stop flag is set.
pub(crate) fn sampler_loop(
    stop: &AtomicBool,
    interval: Duration,
    clock: Stopwatch,
    registry: &MetricRegistry,
    out: &Mutex<Vec<EngineSample>>,
) {
    // Sleep in short slices so a finished run never waits a full
    // interval for the sampler to notice the stop flag.
    let slice = interval
        .min(Duration::from_millis(5))
        .max(Duration::from_micros(100));
    let mut next = interval;
    while !stop.load(Ordering::Acquire) {
        if clock.elapsed() < next {
            std::thread::sleep(slice);
            continue;
        }
        next += interval;
        let snap = registry.snapshot();
        let sample = EngineSample {
            t_ns: clock.elapsed_ns(),
            queue_depth: snap.sum("swag_engine_queue_depth"),
            tuples: snap.sum("swag_engine_tuples_total"),
            watermark_lag: snap.max("swag_engine_watermark_lag"),
        };
        if let Ok(mut samples) = out.lock() {
            samples.push(sample);
        }
    }
}
