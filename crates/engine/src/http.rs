//! A minimal metrics exposition endpoint over `std::net` — no HTTP
//! library, no async runtime.
//!
//! [`MetricsServer`] binds a `TcpListener` and serves two read-only
//! routes from a shared [`MetricRegistry`]:
//!
//! * `GET /metrics` — Prometheus text exposition format (0.0.4), exactly
//!   [`RegistrySnapshot::to_prometheus_text`]'s rendering;
//! * `GET /metrics.json` — the same snapshot as JSON.
//!
//! Anything else is a 404 (or a 405 for non-GET methods). Requests are
//! handled sequentially on one thread: a scrape is a registry snapshot
//! plus a small formatted write, and monitoring traffic is one poll
//! every few seconds — concurrency would buy nothing. Shutdown sets a
//! stop flag and self-connects to unblock `accept`, so no platform
//! `select`/nonblocking machinery is needed.
//!
//! [`RegistrySnapshot::to_prometheus_text`]: swag_metrics::registry::RegistrySnapshot::to_prometheus_text

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swag_metrics::registry::MetricRegistry;
use swag_metrics::ToJson;

/// A running exposition endpoint. Stops serving (and joins its thread)
/// on [`shutdown`](Self::shutdown) or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port 0 for an ephemeral
    /// port) and serve `registry` until shutdown.
    pub fn start<A: ToSocketAddrs>(addr: A, registry: Arc<MetricRegistry>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("swag-metrics-http".into())
            .spawn(move || serve(listener, registry, &thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, finish the in-flight request if any, and join the
    /// server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Wake the blocking accept; an error just means the listener
            // is already gone.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: TcpListener, registry: Arc<MetricRegistry>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stalled client must not wedge the endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_request(stream, &registry);
    }
}

fn handle_request(mut stream: TcpStream, registry: &MetricRegistry) -> io::Result<()> {
    // Read until the end of the request head (CRLFCRLF) or the buffer
    // fills; GET requests have no body worth reading.
    let mut buf = [0u8; 2048];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.snapshot().to_prometheus_text(),
            ),
            "/metrics.json" => ("200 OK", "application/json; charset=utf-8", {
                let mut json = registry.snapshot().to_json().pretty();
                json.push('\n');
                json
            }),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found (try /metrics or /metrics.json)\n".to_string(),
            ),
        }
    };

    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_metrics::Json;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_text_and_json() {
        let registry = Arc::new(MetricRegistry::new());
        registry
            .counter("swag_engine_tuples_total", "Tuples", &[("shard", "0")])
            .add(42);
        let server = MetricsServer::start("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.local_addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert_eq!(body, registry.snapshot().to_prometheus_text());
        assert!(body.contains("swag_engine_tuples_total{shard=\"0\"} 42"));

        // The endpoint serves live values, not a startup snapshot.
        registry
            .counter("swag_engine_tuples_total", "Tuples", &[("shard", "0")])
            .add(8);
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("swag_engine_tuples_total{shard=\"0\"} 50"));

        let (head, body) = http_get(addr, "/metrics.json");
        assert!(head.contains("application/json"), "{head}");
        let doc = Json::parse(&body).expect("JSON body parses");
        let metrics = doc.get("metrics").and_then(Json::as_array).unwrap();
        assert_eq!(
            metrics[0].get("value").and_then(Json::as_u64),
            Some(50),
            "live counter value served"
        );
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let server = MetricsServer::start("127.0.0.1:0", Arc::new(MetricRegistry::new())).unwrap();
        let addr = server.local_addr();
        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }

    #[test]
    fn shutdown_unblocks_accept_and_joins() {
        let server = MetricsServer::start("127.0.0.1:0", Arc::new(MetricRegistry::new())).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh bind to the same port succeeds
        // (or the connect below fails) — either way, no thread is stuck.
        assert!(
            TcpListener::bind(addr).is_ok() || TcpStream::connect(addr).is_err(),
            "server released its port"
        );
    }
}
