//! Per-shard and whole-engine run statistics.

use std::time::Duration;
use swag_metrics::json::{Json, ToJson};

/// What one shard worker did during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index (0-based).
    pub shard: usize,
    /// Keyed tuples this shard processed.
    pub tuples: u64,
    /// Answers its per-key windows produced.
    pub answers: u64,
    /// Channel batches this shard received (one per `recv`).
    pub batches: u64,
    /// Distinct keys routed to this shard.
    pub keys: usize,
    /// Deepest inbound-queue occupancy observed, in tuples — the
    /// backpressure signal (a shard pinned near the channel capacity is
    /// the bottleneck).
    pub max_queue_depth: u64,
    /// The event-time watermark this shard durably passed by drain time.
    /// Always 0 on the arrival-order path (`ShardedEngine::run`), where
    /// time is positional.
    pub watermark: u64,
    /// Wall-clock time from worker start until it drained its queue.
    pub elapsed: Duration,
}

impl ToJson for ShardStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shard", Json::UInt(self.shard as u64)),
            ("tuples", Json::UInt(self.tuples)),
            ("answers", Json::UInt(self.answers)),
            ("batches", Json::UInt(self.batches)),
            ("keys", Json::UInt(self.keys as u64)),
            ("max_queue_depth", Json::UInt(self.max_queue_depth)),
            ("watermark", Json::UInt(self.watermark)),
            ("elapsed_secs", Json::Num(self.elapsed.as_secs_f64())),
        ])
    }
}

/// Merged statistics for a whole engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Worker count the run used.
    pub shards: Vec<ShardStats>,
    /// Total keyed tuples routed.
    pub tuples: u64,
    /// Total answers produced across shards.
    pub answers: u64,
    /// Total channel batches received across shards.
    pub batches: u64,
    /// Tuples the router dropped for arriving below the watermark.
    /// Always 0 on the arrival-order path.
    pub late_tuples: u64,
    /// Wall-clock duration of the run (routing start to last worker
    /// drained).
    pub elapsed: Duration,
}

impl EngineStats {
    /// Merge per-shard reports under the run's wall-clock time.
    pub fn merge(shards: Vec<ShardStats>, elapsed: Duration) -> Self {
        let tuples = shards.iter().map(|s| s.tuples).sum();
        let answers = shards.iter().map(|s| s.answers).sum();
        let batches = shards.iter().map(|s| s.batches).sum();
        EngineStats {
            shards,
            tuples,
            answers,
            batches,
            late_tuples: 0,
            elapsed,
        }
    }

    /// The engine-level event-time watermark: the minimum across shards
    /// of the per-shard watermarks — the frontier every shard has durably
    /// passed. 0 on the arrival-order path or with no shards.
    pub fn watermark(&self) -> u64 {
        self.shards.iter().map(|s| s.watermark).min().unwrap_or(0)
    }

    /// End-to-end keyed tuples per second.
    pub fn tuples_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.tuples as f64 / secs
        }
    }

    /// Distinct keys across all shards (keys never span shards).
    pub fn keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys).sum()
    }

    /// Average tuples delivered per channel `recv` — how well the router's
    /// batching amortises channel synchronisation. Below the configured
    /// batch size means the source drained faster than workers consumed
    /// (frequent partial flushes).
    pub fn tuples_per_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.tuples as f64 / self.batches as f64
        }
    }

    /// Largest per-shard queue watermark — how close the engine came to
    /// full backpressure.
    pub fn max_queue_depth(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Tuple imbalance: the busiest shard's share relative to a perfectly
    /// even split (1.0 = perfectly balanced).
    pub fn skew(&self) -> f64 {
        if self.tuples == 0 || self.shards.is_empty() {
            return 1.0;
        }
        let busiest = self.shards.iter().map(|s| s.tuples).max().unwrap_or(0);
        busiest as f64 * self.shards.len() as f64 / self.tuples as f64
    }

    /// Answer imbalance, same normalisation as [`skew`](Self::skew): the
    /// shard producing the most answers relative to an even split. Can
    /// diverge from tuple skew when window sizes or plans differ per key.
    pub fn answers_skew(&self) -> f64 {
        if self.answers == 0 || self.shards.is_empty() {
            return 1.0;
        }
        let busiest = self.shards.iter().map(|s| s.answers).max().unwrap_or(0);
        busiest as f64 * self.shards.len() as f64 / self.answers as f64
    }

    /// One shard's share of the run relative to an even split: `count ×
    /// shards / total` (1.0 = exactly its fair share). Returns 1.0 for an
    /// empty total.
    fn ratio(count: u64, total: u64, shards: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            count as f64 * shards as f64 / total as f64
        }
    }
}

impl ToJson for EngineStats {
    /// Every historical field name is preserved; `answers_skew` and the
    /// per-shard `tuples_ratio`/`answers_ratio` load-balance diagnostics
    /// are additive (a ratio of 1.0 is a perfectly fair share, >1.0 a hot
    /// shard).
    fn to_json(&self) -> Json {
        let n = self.shards.len();
        Json::obj(vec![
            ("tuples", Json::UInt(self.tuples)),
            ("answers", Json::UInt(self.answers)),
            ("batches", Json::UInt(self.batches)),
            ("late_tuples", Json::UInt(self.late_tuples)),
            ("watermark", Json::UInt(self.watermark())),
            ("keys", Json::UInt(self.keys() as u64)),
            ("elapsed_secs", Json::Num(self.elapsed.as_secs_f64())),
            ("tuples_per_sec", Json::Num(self.tuples_per_sec())),
            ("tuples_per_batch", Json::Num(self.tuples_per_batch())),
            ("max_queue_depth", Json::UInt(self.max_queue_depth())),
            ("skew", Json::Num(self.skew())),
            ("answers_skew", Json::Num(self.answers_skew())),
            (
                "shards",
                Json::arr(self.shards.iter(), |s| {
                    let Json::Obj(mut fields) = s.to_json() else {
                        // check:allow ShardStats::to_json always builds an object
                        unreachable!("ShardStats::to_json returns an object");
                    };
                    fields.push((
                        "tuples_ratio".to_string(),
                        Json::Num(Self::ratio(s.tuples, self.tuples, n)),
                    ));
                    fields.push((
                        "answers_ratio".to_string(),
                        Json::Num(Self::ratio(s.answers, self.answers, n)),
                    ));
                    Json::Obj(fields)
                }),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(
        i: usize,
        tuples: u64,
        answers: u64,
        batches: u64,
        keys: usize,
        depth: u64,
    ) -> ShardStats {
        ShardStats {
            shard: i,
            tuples,
            answers,
            batches,
            keys,
            max_queue_depth: depth,
            watermark: 0,
            elapsed: Duration::from_millis(10),
        }
    }

    #[test]
    fn merge_sums_and_computes_rates() {
        let stats = EngineStats::merge(
            vec![shard(0, 600, 600, 3, 3, 10), shard(1, 400, 400, 2, 2, 40)],
            Duration::from_secs(2),
        );
        assert_eq!(stats.tuples, 1000);
        assert_eq!(stats.answers, 1000);
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.keys(), 5);
        assert_eq!(stats.max_queue_depth(), 40);
        assert!((stats.tuples_per_sec() - 500.0).abs() < 1e-9);
        assert!((stats.tuples_per_batch() - 200.0).abs() < 1e-9);
        // Busiest shard has 600 of 1000 over 2 shards → skew 1.2.
        assert!((stats.skew() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn tuples_per_batch_handles_empty_runs() {
        let stats = EngineStats::merge(vec![shard(0, 0, 0, 0, 0, 0)], Duration::from_secs(1));
        assert_eq!(stats.tuples_per_batch(), 0.0);
    }

    #[test]
    fn stats_render_as_json() {
        let stats = EngineStats::merge(vec![shard(0, 1, 2, 1, 1, 3)], Duration::from_secs(1));
        let text = stats.to_json().pretty();
        assert!(text.contains("\"tuples\": 1"));
        assert!(text.contains("\"batches\": 1"));
        assert!(text.contains("\"max_queue_depth\": 3"));
        assert!(text.contains("\"shards\": ["));
    }

    #[test]
    fn json_adds_skew_ratios_and_keeps_old_field_names() {
        // Shard 0 does 3/4 of the tuples but only 1/4 of the answers.
        let stats = EngineStats::merge(
            vec![shard(0, 600, 100, 3, 3, 10), shard(1, 200, 300, 2, 2, 40)],
            Duration::from_secs(1),
        );
        assert!((stats.answers_skew() - 1.5).abs() < 1e-9);
        let doc = Json::parse(&stats.to_json().pretty()).unwrap();
        // Historical consumers keep working: old names, old meanings.
        for field in [
            "tuples",
            "answers",
            "batches",
            "keys",
            "elapsed_secs",
            "tuples_per_sec",
            "tuples_per_batch",
            "max_queue_depth",
            "skew",
        ] {
            assert!(doc.get(field).is_some(), "missing top-level `{field}`");
        }
        assert_eq!(doc.get("keys").and_then(Json::as_u64), Some(5));
        assert_eq!(doc.get("answers_skew").and_then(Json::as_f64), Some(1.5));
        let shards = doc.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(
            shards[0].get("tuples_ratio").and_then(Json::as_f64),
            Some(1.5),
            "600 of 800 tuples over 2 shards"
        );
        assert_eq!(
            shards[0].get("answers_ratio").and_then(Json::as_f64),
            Some(0.5),
            "100 of 400 answers over 2 shards"
        );
        assert_eq!(shards[1].get("shard").and_then(Json::as_u64), Some(1));
        assert_eq!(
            shards[1].get("max_queue_depth").and_then(Json::as_u64),
            Some(40)
        );
    }
}
