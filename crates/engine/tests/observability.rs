//! End-to-end observability: registry series vs. engine stats, the
//! queue-depth sampler, flight-recorder dumps on graceful drain, and —
//! the reason the recorder exists — a parseable post-mortem when a shard
//! worker panics mid-run.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use swag_core::algorithms::SlickDequeInv;
use swag_core::ops::Sum;
use swag_data::keyed::{Key, KeyedSource, KeyedVecSource};
use swag_engine::{EngineConfig, KeyedWindows, ObservabilityConfig, ShardProcessor, ShardedEngine};
use swag_metrics::registry::MetricRegistry;
use swag_metrics::Json;

fn tuples(n: u64, keys: u64) -> Vec<(Key, f64)> {
    (0..n).map(|i| (i % keys, (i % 13) as f64)).collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swag-engine-obs-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn read_flightrec(dir: &std::path::Path, shard: usize) -> Json {
    let path = dir.join(format!("flightrec-{shard}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()))
}

fn event_kinds(doc: &Json) -> Vec<String> {
    doc.get("events")
        .and_then(Json::as_array)
        .expect("dump has an events array")
        .iter()
        .map(|e| {
            e.get("kind")
                .and_then(Json::as_str)
                .expect("event has a kind")
                .to_string()
        })
        .collect()
}

/// A source that trickles tuples out slowly enough for the sampler to
/// observe the run in flight.
struct ThrottledSource {
    inner: KeyedVecSource,
    yielded: u64,
}

impl KeyedSource for ThrottledSource {
    fn next_tuple(&mut self) -> Option<(Key, f64)> {
        self.yielded += 1;
        if self.yielded.is_multiple_of(64) {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.inner.next_tuple()
    }
}

#[test]
fn registry_series_match_stats_and_drain_dumps_parse() {
    let dir = temp_dir("drain");
    let registry = Arc::new(MetricRegistry::new());
    let engine = ShardedEngine::new(EngineConfig {
        shards: 2,
        queue_capacity: 4,
        batch: 32,
        retain_answers: false,
        check_invariants: true,
        obs: ObservabilityConfig {
            registry: Some(registry.clone()),
            trace_capacity: 64,
            trace_out: Some(dir.clone()),
            sample_interval: Some(Duration::from_millis(2)),
            labels: Vec::new(),
        },
    });
    let mut source = ThrottledSource {
        inner: KeyedVecSource::new(tuples(20_000, 11)),
        yielded: 0,
    };
    let run = engine.run(&mut source, u64::MAX, |_| {
        KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), 16)
    });
    assert_eq!(run.stats.tuples, 20_000);

    // Registry counters agree with the per-run stats (fresh registry, so
    // cumulative == this run).
    let snap = registry.snapshot();
    assert_eq!(snap.sum("swag_engine_tuples_total"), run.stats.tuples);
    assert_eq!(snap.sum("swag_engine_answers_total"), run.stats.answers);
    assert_eq!(snap.sum("swag_engine_batches_total"), run.stats.batches);
    assert_eq!(snap.sum("swag_engine_keys"), run.stats.keys() as u64);

    // Slide latencies were recorded and quantiles are coherent.
    let latency = snap
        .merged_histogram("swag_slide_latency_ns")
        .expect("slide latency histogram registered");
    assert!(latency.count > 0, "slides were timed");
    let (p50, p99, p999) = (
        latency.quantile(0.50),
        latency.quantile(0.99),
        latency.quantile(0.999),
    );
    assert!(p50 <= p99 && p99 <= p999 && p999 <= latency.max);

    // The Prometheus rendering carries every engine series.
    let text = snap.to_prometheus_text();
    for name in [
        "swag_engine_tuples_total",
        "swag_engine_answers_total",
        "swag_engine_batches_total",
        "swag_engine_keys",
        "swag_engine_queue_depth",
        "swag_engine_queue_depth_peak",
        "swag_engine_busy_ns_total",
        "swag_engine_blocked_ns_total",
        "swag_slide_latency_ns_bucket",
    ] {
        assert!(text.contains(name), "missing `{name}` in exposition");
    }

    // Phase occupancy: a 20k-tuple run must have spent measurable time in
    // both phases (the throttled source forces recv() waits).
    assert!(
        snap.sum("swag_engine_busy_ns_total") > 0,
        "workers recorded busy time"
    );
    assert!(
        snap.sum("swag_engine_blocked_ns_total") > 0,
        "workers recorded blocked-on-channel time"
    );

    // The sampler produced a monotone time series while the run was live.
    assert!(
        !run.samples.is_empty(),
        "a throttled 20k-tuple run spans several 2ms sample intervals"
    );
    for pair in run.samples.windows(2) {
        assert!(pair[0].t_ns <= pair[1].t_ns, "sample times are ordered");
        assert!(pair[0].tuples <= pair[1].tuples, "tuple counts only grow");
    }

    // Both shards dumped their rings on graceful drain, ending in a
    // drain event (invariant check precedes it; checking was on).
    for shard in 0..2 {
        let doc = read_flightrec(&dir, shard);
        let kinds = event_kinds(&doc);
        assert_eq!(kinds.last().map(String::as_str), Some("drain"));
        assert!(kinds.contains(&"invariant_check".to_string()));
        assert!(kinds.contains(&"batch_received".to_string()));
        assert!(kinds.contains(&"slide".to_string()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A processor that works normally, then panics after a set number of
/// tuples — the injected fault for the post-mortem test.
struct FaultyProcessor {
    inner: KeyedWindows<Sum<f64>, SlickDequeInv<Sum<f64>>>,
    processed: u64,
    fault_after: u64,
}

impl ShardProcessor for FaultyProcessor {
    type Answer = f64;

    fn process(&mut self, key: Key, value: f64, out: &mut Vec<(Key, f64)>) {
        self.processed += 1;
        assert!(
            self.processed <= self.fault_after,
            "injected fault: shard crashed after {} tuples",
            self.fault_after
        );
        self.inner.process(key, value, out);
    }

    fn keys(&self) -> usize {
        self.inner.keys()
    }
}

#[test]
fn worker_panic_leaves_a_parseable_post_mortem() {
    let dir = temp_dir("panic");
    let engine = ShardedEngine::new(EngineConfig {
        shards: 1,
        queue_capacity: 4,
        batch: 64,
        retain_answers: false,
        check_invariants: false,
        obs: ObservabilityConfig {
            registry: None,
            trace_capacity: 32,
            trace_out: Some(dir.clone()),
            sample_interval: None,
            labels: Vec::new(),
        },
    });
    let mut source = KeyedVecSource::new(tuples(5_000, 7));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.run(&mut source, u64::MAX, |_| FaultyProcessor {
            inner: KeyedWindows::new(Sum::<f64>::new(), 16),
            processed: 0,
            fault_after: 1_000,
        })
    }));
    assert!(outcome.is_err(), "the injected fault must fail the run");

    // The dump exists, parses, and its tail explains what the shard was
    // doing: working through batches/slides right up to the panic.
    let doc = read_flightrec(&dir, 0);
    let kinds = event_kinds(&doc);
    assert_eq!(
        kinds.last().map(String::as_str),
        Some("panic"),
        "panic is the final recorded event, got {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| k == "batch_received") && kinds.iter().any(|k| k == "slide"),
        "events before the panic show normal processing, got {kinds:?}"
    );
    assert!(
        !kinds.iter().any(|k| k == "drain"),
        "a crashed shard never drained"
    );
    // The ring holds the *last* events: more happened than the ring kept.
    let recorded = doc.get("recorded").and_then(Json::as_u64).unwrap();
    let capacity = doc.get("capacity").and_then(Json::as_u64).unwrap();
    assert!(recorded >= capacity, "the ring wrapped before the crash");
    std::fs::remove_dir_all(&dir).ok();
}
