//! Post-drain invariant checking through the engine
//! ([`EngineConfig::check_invariants`]): after a graceful drain every
//! shard validates the paper-level structural invariants of each key's
//! window state and panics the run on a violation.
//!
//! Streams here carry integer-valued `f64` tuples so the SlickDeque (Inv)
//! `answer-refold` comparison is exact (⊕/⊖ cancel bitwise for integers
//! within `f64`'s exact range; see `SlickDequeInv::check_invariants`).

use swag_core::aggregator::FinalAggregator;
use swag_core::algorithms::{Daba, SlickDequeInv, SlickDequeNonInv, TwoStacks};
use swag_core::multi::MultiSlickDequeInv;
use swag_core::ops::{MaxF64, MinF64, Sum};
use swag_data::keyed::{Key, KeyedVecSource};
use swag_data::prng::Xoshiro256StarStar;
use swag_engine::{EngineConfig, KeyedPlans, KeyedWindows, ShardProcessor, ShardedEngine};
use swag_plan::{Pat, Query, SharedPlan};

const WINDOW: usize = 24;
const TUPLES: u64 = 4000;
const KEYS: u64 = 23;

/// A skewed keyed stream of integer-valued floats.
fn keyed_stream(seed: u64) -> Vec<(Key, f64)> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..TUPLES)
        .map(|_| {
            let key = rng.gen_below(KEYS);
            let value = rng.gen_below(1000) as f64 - 500.0;
            (key, value)
        })
        .collect()
}

fn checking_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        queue_capacity: 4,
        batch: 32,
        retain_answers: false,
        check_invariants: true,
        ..EngineConfig::default()
    }
}

/// The drain-time check passes for every algorithm the engine can host;
/// a violation would panic the shard worker and fail the test.
fn run_checked<A>(op_windows: fn(usize) -> A)
where
    A: ShardProcessor + 'static,
{
    for shards in [1, 3] {
        let engine = ShardedEngine::new(checking_config(shards));
        let mut source = KeyedVecSource::new(keyed_stream(0xC0FFEE));
        let run = engine.run(&mut source, u64::MAX, op_windows);
        assert_eq!(run.stats.tuples, TUPLES);
    }
}

#[test]
fn post_drain_check_passes_for_slickdeque_inv() {
    run_checked(|_| KeyedWindows::<_, SlickDequeInv<_>>::new(Sum::<f64>::new(), WINDOW));
}

#[test]
fn post_drain_check_passes_for_slickdeque_noninv_extrema() {
    run_checked(|_| KeyedWindows::<_, SlickDequeNonInv<_>>::new(MaxF64::new(), WINDOW));
    run_checked(|_| KeyedWindows::<_, SlickDequeNonInv<_>>::new(MinF64::new(), WINDOW));
}

#[test]
fn post_drain_check_passes_for_daba_and_twostacks() {
    run_checked(|_| KeyedWindows::<_, Daba<_>>::new(Sum::<f64>::new(), WINDOW));
    run_checked(|_| KeyedWindows::<_, TwoStacks<_>>::new(Sum::<f64>::new(), WINDOW));
}

#[test]
fn post_drain_check_passes_for_shared_plans() {
    let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
    for shards in [1, 3] {
        let engine = ShardedEngine::new(checking_config(shards));
        let mut source = KeyedVecSource::new(keyed_stream(0xFACADE));
        let run = engine.run(&mut source, u64::MAX, |_| {
            KeyedPlans::<_, MultiSlickDequeInv<_>>::new(Sum::<f64>::new(), plan.clone())
        });
        assert_eq!(run.stats.tuples, TUPLES);
    }
}

/// The processor-level check is callable directly and validates every
/// key's state, not just one.
#[test]
fn processor_check_covers_all_keys() {
    let mut kw: KeyedWindows<_, SlickDequeNonInv<_>> = KeyedWindows::new(MaxF64::new(), 8);
    let mut out = Vec::new();
    for (i, &(key, value)) in keyed_stream(0xBEEF).iter().take(500).enumerate() {
        kw.process(key, value, &mut out);
        if i % 97 == 0 {
            kw.check_invariants().unwrap();
        }
    }
    assert!(kw.keys() > 1);
    kw.check_invariants().unwrap();
    // Each key's own aggregator agrees with the blanket check.
    for key in 0..KEYS {
        if let Some(state) = kw.state(key) {
            state.check_invariants().unwrap();
        }
    }
}
