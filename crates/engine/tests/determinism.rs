//! Sharding must not change answers: for every supported operator, the
//! per-key answer sequences of a sharded run are bit-identical to a
//! single-threaded (1-shard) reference, for any shard count.
//!
//! This is the engine's core correctness claim (see `shard.rs`): one
//! router preserves source order, and a key maps to exactly one shard, so
//! each key's window state sees its tuples in stream order no matter how
//! many workers exist. Floating-point answers are compared exactly — the
//! per-key operation sequence is identical, so even non-associative
//! rounding must reproduce.

use std::collections::BTreeMap;
use swag_core::aggregator::FinalAggregator;
use swag_core::algorithms::{SlickDequeInv, SlickDequeNonInv};
use swag_core::ops::{AggregateOp, MaxF64, Mean, MinF64, StdDev, Sum};
use swag_data::keyed::{Key, KeyedVecSource};
use swag_data::prng::Xoshiro256StarStar;
use swag_engine::{EngineConfig, KeyedWindows, ShardedEngine};

const WINDOW: usize = 32;
const TUPLES: u64 = 6000;
const KEYS: u64 = 41;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// A keyed stream with skewed key frequencies and varied values, so shards
/// receive unequal load and windows cross many expiry boundaries.
fn keyed_stream() -> Vec<(Key, f64)> {
    let mut rng = Xoshiro256StarStar::new(0xD15C0);
    (0..TUPLES)
        .map(|_| {
            // Quadratic skew: low keys appear far more often.
            let r = rng.next_f64();
            let key = ((r * r) * KEYS as f64) as Key;
            (key.min(KEYS - 1), rng.gen_range_f64(-100.0, 100.0))
        })
        .collect()
}

/// Per-key answer sequences from one sharded run.
fn per_key_answers<O, A>(op: O, shards: usize, input: &[(Key, f64)]) -> BTreeMap<Key, Vec<f64>>
where
    O: AggregateOp<Input = f64, Output = f64> + Clone + Send + Sync,
    O::Partial: Send,
    A: FinalAggregator<O> + Send,
{
    let engine = ShardedEngine::new(EngineConfig {
        shards,
        queue_capacity: 4,
        batch: 64,
        retain_answers: true,
        check_invariants: false,
        ..EngineConfig::default()
    });
    let mut source = KeyedVecSource::new(input.to_vec());
    let run = engine.run(&mut source, u64::MAX, |_| {
        KeyedWindows::<O, A>::new(op.clone(), WINDOW)
    });
    assert_eq!(run.stats.tuples, input.len() as u64, "{shards} shards");
    assert_eq!(run.stats.answers, input.len() as u64, "{shards} shards");
    let mut by_key: BTreeMap<Key, Vec<f64>> = BTreeMap::new();
    for (key, answer) in run.answers.into_iter().flatten() {
        by_key.entry(key).or_default().push(answer);
    }
    by_key
}

fn assert_shard_count_invariant<O, A>(op: O, name: &str)
where
    O: AggregateOp<Input = f64, Output = f64> + Clone + Send + Sync,
    O::Partial: Send,
    A: FinalAggregator<O> + Send,
{
    let input = keyed_stream();
    let reference = per_key_answers::<O, A>(op.clone(), SHARD_COUNTS[0], &input);
    assert_eq!(reference.len() as u64, KEYS, "{name}: all keys observed");
    for &shards in &SHARD_COUNTS[1..] {
        let got = per_key_answers::<O, A>(op.clone(), shards, &input);
        assert_eq!(got.len(), reference.len(), "{name} @ {shards} shards");
        for (key, expect) in &reference {
            let answers = &got[key];
            assert_eq!(
                answers.len(),
                expect.len(),
                "{name} key {key} @ {shards} shards"
            );
            for (i, (a, e)) in answers.iter().zip(expect).enumerate() {
                assert!(
                    a == e || (a.is_nan() && e.is_nan()),
                    "{name} key {key} answer {i} @ {shards} shards: {a} vs {e}"
                );
            }
        }
    }
}

#[test]
fn sum_is_shard_count_invariant() {
    assert_shard_count_invariant::<_, SlickDequeInv<_>>(Sum::<f64>::new(), "sum");
}

#[test]
fn mean_is_shard_count_invariant() {
    assert_shard_count_invariant::<_, SlickDequeInv<_>>(Mean::new(), "mean");
}

#[test]
fn stddev_is_shard_count_invariant() {
    assert_shard_count_invariant::<_, SlickDequeInv<_>>(StdDev::new(), "stddev");
}

#[test]
fn max_is_shard_count_invariant() {
    assert_shard_count_invariant::<_, SlickDequeNonInv<_>>(MaxF64::new(), "max");
}

#[test]
fn min_is_shard_count_invariant() {
    assert_shard_count_invariant::<_, SlickDequeNonInv<_>>(MinF64::new(), "min");
}
