//! A DEBS12-Grand-Challenge-shaped synthetic dataset.
//!
//! The paper evaluates on the DEBS 2012 Grand Challenge dataset: events
//! from sensors of large hi-tech manufacturing equipment, sampled at
//! 100 Hz, each carrying **3 energy readings and 51 sensor-state values**
//! (~33 M unique events, replicated to 134 M tuples). That dataset is not
//! redistributable here, so this module synthesises a stream with the same
//! shape and the same *ordering statistics*:
//!
//! * 100 Hz timestamps;
//! * three energy channels modelled as bounded, autocorrelated random
//!   walks with measurement noise and occasional regime shifts (idle /
//!   ramp / load), which reproduces the short monotone runs and absence of
//!   global trend that drive SlickDeque (Non-Inv)'s deque occupancy;
//! * 51 discrete state fields flipping with low probability per tick.
//!
//! Every compared algorithm is value-agnostic for invertible operations
//! and depends only on value *ordering* for the monotone deque, so this
//! substitution preserves the paper's experimental behaviour (see
//! DESIGN.md §3).

use crate::prng::Xoshiro256StarStar;

/// Sample rate of the DEBS12 recordings.
pub const DEBS_SAMPLE_HZ: u32 = 100;
/// Number of sensor-state fields per event.
pub const STATE_FIELDS: usize = 51;
/// Number of energy readings per event.
pub const ENERGY_CHANNELS: usize = 3;

/// One synthetic manufacturing-equipment event.
#[derive(Debug, Clone, PartialEq)]
pub struct DebsEvent {
    /// Milliseconds since stream start (10 ms steps at 100 Hz).
    pub timestamp_ms: u64,
    /// The three energy readings.
    pub energy: [f64; ENERGY_CHANNELS],
    /// The 51 discrete sensor states.
    pub states: [u8; STATE_FIELDS],
}

/// Operating regime of the simulated equipment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Idle,
    Ramp,
    Load,
}

impl Regime {
    fn target(self) -> f64 {
        match self {
            Regime::Idle => 5.0,
            Regime::Ramp => 40.0,
            Regime::Load => 75.0,
        }
    }
}

/// Deterministic, seeded generator of [`DebsEvent`] streams.
#[derive(Debug, Clone)]
pub struct DebsGenerator {
    rng: Xoshiro256StarStar,
    tick: u64,
    levels: [f64; ENERGY_CHANNELS],
    regime: Regime,
    regime_left: u32,
    states: [u8; STATE_FIELDS],
}

impl DebsGenerator {
    /// Create a generator with the given seed. Identical seeds produce
    /// identical streams.
    pub fn new(seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut states = [0u8; STATE_FIELDS];
        for s in &mut states {
            *s = rng.gen_below(4) as u8;
        }
        DebsGenerator {
            rng,
            tick: 0,
            levels: [5.0; ENERGY_CHANNELS],
            regime: Regime::Idle,
            regime_left: 500,
            states,
        }
    }

    fn step_regime(&mut self) {
        if self.regime_left == 0 {
            self.regime = match self.regime {
                Regime::Idle => Regime::Ramp,
                Regime::Ramp => {
                    if self.rng.gen_bool(0.7) {
                        Regime::Load
                    } else {
                        Regime::Idle
                    }
                }
                Regime::Load => {
                    if self.rng.gen_bool(0.3) {
                        Regime::Ramp
                    } else {
                        Regime::Idle
                    }
                }
            };
            // Regimes last 2-60 s at 100 Hz.
            self.regime_left = self.rng.gen_range_u64(200, 6000) as u32;
        }
        self.regime_left -= 1;
    }
}

impl Iterator for DebsGenerator {
    type Item = DebsEvent;

    fn next(&mut self) -> Option<DebsEvent> {
        self.step_regime();
        let target = self.regime.target();
        let mut energy = [0.0; ENERGY_CHANNELS];
        for (c, level) in self.levels.iter_mut().enumerate() {
            // Mean-reverting bounded walk toward the regime target, with
            // per-channel scale and white measurement noise.
            let pull = (target - *level) * 0.02;
            let walk: f64 = self.rng.gen_range_f64(-0.5, 0.5);
            *level = (*level + pull + walk).clamp(0.0, 120.0);
            let noise: f64 = self.rng.gen_range_f64(-0.2, 0.2);
            energy[c] = (*level * (1.0 + 0.1 * c as f64) + noise).max(0.0);
        }
        for s in &mut self.states {
            if self.rng.gen_bool(0.002) {
                *s = self.rng.gen_below(4) as u8;
            }
        }
        let ev = DebsEvent {
            timestamp_ms: self.tick * 1000 / DEBS_SAMPLE_HZ as u64,
            energy,
            states: self.states,
        };
        self.tick += 1;
        Some(ev)
    }
}

/// Generate `n` events with the given seed.
pub fn generate(n: usize, seed: u64) -> Vec<DebsEvent> {
    DebsGenerator::new(seed).take(n).collect()
}

/// Generate just one energy channel as a plain `f64` stream — the inputs
/// the paper's experiments aggregate ("three different energy readings
/// from the DEBS12 dataset").
pub fn energy_stream(n: usize, seed: u64, channel: usize) -> Vec<f64> {
    assert!(channel < ENERGY_CHANNELS, "channel out of range");
    DebsGenerator::new(seed)
        .take(n)
        .map(|e| e.energy[channel])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(500, 42);
        let b = generate(500, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = energy_stream(100, 1, 0);
        let b = energy_stream(100, 2, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_advance_at_100hz() {
        let evs = generate(5, 7);
        let ts: Vec<u64> = evs.iter().map(|e| e.timestamp_ms).collect();
        assert_eq!(ts, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn energy_is_bounded_and_nonnegative() {
        for ev in generate(20_000, 9) {
            for &e in &ev.energy {
                assert!((0.0..200.0).contains(&e), "energy out of range: {e}");
            }
        }
    }

    #[test]
    fn regimes_produce_level_shifts() {
        // Over a long run the stream should visit clearly different energy
        // levels (idle ≈ 5, load ≈ 75) — the autocorrelated structure the
        // substitution argument relies on.
        let s = energy_stream(200_000, 3, 0);
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 15.0, "min {min}");
        assert!(max > 50.0, "max {max}");
    }

    #[test]
    fn autocorrelation_is_high_at_lag_one() {
        // Adjacent samples should be strongly correlated (random walk),
        // unlike white noise.
        let s = energy_stream(50_000, 5, 1);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let cov: f64 = s
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let rho = cov / var;
        assert!(rho > 0.9, "lag-1 autocorrelation too low: {rho}");
    }

    #[test]
    fn states_change_rarely() {
        let evs = generate(1000, 11);
        let mut changes = 0usize;
        for w in evs.windows(2) {
            changes += w[0]
                .states
                .iter()
                .zip(&w[1].states)
                .filter(|(a, b)| a != b)
                .count();
        }
        // 51 fields × 999 ticks × p=0.002 ≈ 102 expected changes.
        assert!(changes > 10 && changes < 500, "changes: {changes}");
    }
}
