//! CSV persistence for DEBS-shaped events, so generated datasets can be
//! written once and replayed across experiment runs (the paper replays a
//! fixed 134 M-tuple dataset).
//!
//! Format: `timestamp_ms,e0,e1,e2,s0,s1,…,s50` — one event per line, no
//! header, values in fixed decimal notation.

use crate::debs::{DebsEvent, ENERGY_CHANNELS, STATE_FIELDS};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Write events as CSV.
pub fn write_events<W: Write>(events: &[DebsEvent], out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    for ev in events {
        write!(w, "{}", ev.timestamp_ms)?;
        for e in &ev.energy {
            write!(w, ",{e:.6}")?;
        }
        for s in &ev.states {
            write!(w, ",{s}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Read events from CSV produced by [`write_events`].
pub fn read_events<R: Read>(input: R) -> io::Result<Vec<DebsEvent>> {
    let reader = BufReader::new(input);
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?);
    }
    Ok(events)
}

fn parse_line(line: &str) -> Result<DebsEvent, String> {
    let mut fields = line.split(',');
    let timestamp_ms = fields
        .next()
        .ok_or("missing timestamp")?
        .parse::<u64>()
        .map_err(|e| format!("bad timestamp: {e}"))?;
    let mut energy = [0.0; ENERGY_CHANNELS];
    for (i, slot) in energy.iter_mut().enumerate() {
        *slot = fields
            .next()
            .ok_or_else(|| format!("missing energy {i}"))?
            .parse::<f64>()
            .map_err(|e| format!("bad energy {i}: {e}"))?;
    }
    let mut states = [0u8; STATE_FIELDS];
    for (i, slot) in states.iter_mut().enumerate() {
        *slot = fields
            .next()
            .ok_or_else(|| format!("missing state {i}"))?
            .parse::<u8>()
            .map_err(|e| format!("bad state {i}: {e}"))?;
    }
    if fields.next().is_some() {
        return Err("trailing fields".to_string());
    }
    Ok(DebsEvent {
        timestamp_ms,
        energy,
        states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debs::generate;

    #[test]
    fn round_trip() {
        let events = generate(200, 13);
        let mut buf = Vec::new();
        write_events(&events, &mut buf).unwrap();
        let back = read_events(buf.as_slice()).unwrap();
        assert_eq!(back.len(), events.len());
        for (a, b) in events.iter().zip(&back) {
            assert_eq!(a.timestamp_ms, b.timestamp_ms);
            assert_eq!(a.states, b.states);
            for (x, y) in a.energy.iter().zip(&b.energy) {
                assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_events("not,a,number".as_bytes()).is_err());
        assert!(read_events("1,2.0".as_bytes()).is_err()); // too few fields
    }

    #[test]
    fn skips_blank_lines() {
        let events = generate(3, 1);
        let mut buf = Vec::new();
        write_events(&events, &mut buf).unwrap();
        let mut s = String::from_utf8(buf).unwrap();
        s.push('\n');
        let back = read_events(s.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn rejects_trailing_fields() {
        let events = generate(1, 1);
        let mut buf = Vec::new();
        write_events(&events, &mut buf).unwrap();
        let mut s = String::from_utf8(buf).unwrap();
        s = s.trim_end().to_string() + ",99\n";
        assert!(read_events(s.as_bytes()).is_err());
    }
}
