//! Event-timestamped keyed streams with bounded disorder.
//!
//! The arrival-order sources in [`keyed`](crate::keyed) emit `(key,
//! value)` — time is implicit in position. This module makes time
//! explicit: a [`KeyedEventSource`] emits `(key, event timestamp, value)`
//! and carries its own **low watermark**, a running promise that every
//! future event's timestamp is at or above it. [`DisorderedKeyedSource`]
//! manufactures out-of-order streams with a *provable* disorder bound
//! from any in-order keyed source, which is what the engine's event-time
//! path and the `results/ooo.json` benchmarks replay.

use crate::keyed::{Key, KeyedSource};
use crate::prng::Xoshiro256StarStar;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pull-based source of keyed, event-timestamped tuples.
pub trait KeyedEventSource {
    /// The next `(key, event timestamp, value)`, or `None` at end of
    /// stream.
    fn next_event(&mut self) -> Option<(Key, u64, f64)>;

    /// A lower bound on every future event's timestamp. Monotone
    /// non-decreasing; consumers treat tuples below it as late.
    fn low_watermark(&self) -> u64;
}

/// Replays an explicit vector of `(key, ts, value)` events, promising a
/// fixed disorder bound: the watermark trails the largest released
/// timestamp by `bound`.
#[derive(Debug)]
pub struct KeyedVecEventSource {
    events: std::vec::IntoIter<(Key, u64, f64)>,
    bound: u64,
    max_released: u64,
    released_any: bool,
}

impl KeyedVecEventSource {
    /// Replay `events` in order, promising every event is displaced by at
    /// most `bound` below the largest timestamp released before it.
    /// (The caller vouches for the promise; the engine's late-drop policy
    /// covers violations.)
    pub fn new(events: Vec<(Key, u64, f64)>, bound: u64) -> Self {
        KeyedVecEventSource {
            events: events.into_iter(),
            bound,
            max_released: 0,
            released_any: false,
        }
    }
}

impl KeyedEventSource for KeyedVecEventSource {
    fn next_event(&mut self) -> Option<(Key, u64, f64)> {
        let (key, ts, v) = self.events.next()?;
        self.max_released = if self.released_any {
            self.max_released.max(ts)
        } else {
            ts
        };
        self.released_any = true;
        Some((key, ts, v))
    }

    fn low_watermark(&self) -> u64 {
        if self.released_any {
            self.max_released.saturating_sub(self.bound)
        } else {
            0
        }
    }
}

/// Heap entry ordered by perturbed position (ties: larger ts first):
/// `(p, Reverse(ts), key, bits)`. Values travel as `to_bits` so the
/// heap can derive `Ord`.
type PendingEvent = Reverse<(u64, Reverse<u64>, Key, u64)>;

/// Wraps an in-order [`KeyedSource`], stamps each tuple with its stream
/// position as the event timestamp, and releases the stream *shuffled*
/// with displacement at most `disorder` positions.
///
/// Mechanics: tuple `ts` is given a perturbed release position
/// `p = ts + uniform(0..=disorder)`; a min-heap of `disorder + 1`
/// pending tuples, ordered by `p` with ties preferring the *larger*
/// timestamp, releases its minimum once full. That realises an exact
/// sort, and because `ts ≤ p ≤ ts + disorder`, any two tuples swapped in
/// release order differ by at most `disorder` timestamps. (Ties must
/// prefer the larger timestamp: broken the other way, a jitter of 1
/// could never invert adjacent tuples and `disorder = 1` would degrade
/// to the identity.)
///
/// The low watermark is `p_last − disorder` where `p_last` is the
/// perturbed position of the last released tuple: every pending or
/// future tuple has `p ≥ p_last`, hence `ts ≥ p − disorder ≥ p_last −
/// disorder`. The bound is tight — a tuple may arrive *exactly* at the
/// watermark — and holds deterministically, so an engine trusting it
/// drops nothing.
#[derive(Debug)]
pub struct DisorderedKeyedSource<S> {
    inner: S,
    disorder: u64,
    rng: Xoshiro256StarStar,
    /// Pending tuples, released in perturbed-position order.
    heap: BinaryHeap<PendingEvent>,
    next_ts: u64,
    last_released_p: u64,
    released_any: bool,
    drained: bool,
}

impl<S: KeyedSource> DisorderedKeyedSource<S> {
    /// Shuffle `inner`'s stream with displacement ≤ `disorder`,
    /// deterministically from `seed`. `disorder = 0` passes the stream
    /// through unchanged (timestamps still attached).
    pub fn new(inner: S, disorder: u64, seed: u64) -> Self {
        DisorderedKeyedSource {
            inner,
            disorder,
            rng: Xoshiro256StarStar::new(seed ^ 0x0D15_0DE5),
            heap: BinaryHeap::new(),
            next_ts: 0,
            last_released_p: 0,
            released_any: false,
            drained: false,
        }
    }

    /// The disorder bound this source was built with.
    pub fn disorder(&self) -> u64 {
        self.disorder
    }

    fn refill(&mut self) {
        while !self.drained && self.heap.len() <= self.disorder as usize {
            match self.inner.next_tuple() {
                Some((key, value)) => {
                    let ts = self.next_ts;
                    self.next_ts += 1;
                    let p = ts + self.rng.gen_below(self.disorder + 1);
                    self.heap
                        .push(Reverse((p, Reverse(ts), key, value.to_bits())));
                }
                None => self.drained = true,
            }
        }
    }
}

impl<S: KeyedSource> KeyedEventSource for DisorderedKeyedSource<S> {
    fn next_event(&mut self) -> Option<(Key, u64, f64)> {
        self.refill();
        let Reverse((p, Reverse(ts), key, bits)) = self.heap.pop()?;
        self.last_released_p = p;
        self.released_any = true;
        Some((key, ts, f64::from_bits(bits)))
    }

    fn low_watermark(&self) -> u64 {
        if self.released_any {
            self.last_released_p.saturating_sub(self.disorder)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::KeyedVecSource;

    fn tuples(n: usize) -> Vec<(Key, f64)> {
        (0..n).map(|i| ((i % 7) as Key, i as f64)).collect()
    }

    #[test]
    fn zero_disorder_is_the_identity() {
        let mut src = DisorderedKeyedSource::new(KeyedVecSource::new(tuples(100)), 0, 1);
        for i in 0..100u64 {
            let (key, ts, v) = src.next_event().expect("tuple");
            assert_eq!(ts, i);
            assert_eq!(key, i % 7);
            assert_eq!(v, i as f64);
            assert!(src.low_watermark() <= ts + 1);
        }
        assert!(src.next_event().is_none());
    }

    #[test]
    fn displacement_is_bounded_and_stream_is_complete() {
        for disorder in [1u64, 16, 256] {
            let n = 2000usize;
            let mut src = DisorderedKeyedSource::new(KeyedVecSource::new(tuples(n)), disorder, 42);
            let mut seen = vec![false; n];
            let mut shuffled = false;
            let mut pos = 0u64;
            while let Some((_, ts, v)) = src.next_event() {
                assert_eq!(v, ts as f64, "value follows its timestamp");
                assert!(
                    ts + disorder >= pos && ts <= pos + disorder,
                    "ts {ts} displaced more than {disorder} from position {pos}"
                );
                shuffled |= ts != pos;
                assert!(!seen[ts as usize], "duplicate ts {ts}");
                seen[ts as usize] = true;
                pos += 1;
            }
            assert!(seen.iter().all(|&s| s), "every tuple released");
            assert!(shuffled, "disorder {disorder} produced no reordering");
        }
    }

    #[test]
    fn watermark_is_a_true_lower_bound() {
        let mut src = DisorderedKeyedSource::new(KeyedVecSource::new(tuples(5000)), 64, 7);
        let mut wm = 0u64;
        while let Some((_, ts, _)) = src.next_event() {
            assert!(ts >= wm, "ts {ts} arrived below promised watermark {wm}");
            let next = src.low_watermark();
            assert!(next >= wm, "watermark went backwards: {next} < {wm}");
            wm = next;
        }
        assert!(wm >= 5000 - 64 - 1, "final watermark {wm} never caught up");
    }

    #[test]
    fn vec_event_source_tracks_its_promise() {
        let mut src = KeyedVecEventSource::new(
            vec![(1, 10, 1.0), (2, 8, 2.0), (1, 12, 3.0), (2, 11, 4.0)],
            4,
        );
        assert_eq!(src.low_watermark(), 0);
        src.next_event();
        assert_eq!(src.low_watermark(), 6); // 10 - 4
        src.next_event();
        assert_eq!(src.low_watermark(), 6); // max released still 10
        src.next_event();
        assert_eq!(src.low_watermark(), 8); // 12 - 4
        assert!(src.next_event().is_some());
        assert!(src.next_event().is_none());
    }
}
