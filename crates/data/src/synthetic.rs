//! Synthetic workload generators used by tests and benchmarks.
//!
//! Besides the DEBS-shaped stream (see [`crate::debs`]) the experiments
//! need characterised inputs: uniform noise (the "exchangeable" case of
//! the paper's probabilistic worst-case analysis), monotone ramps (the
//! deque's best and worst cases), and sawtooths (periodic deque flushes).

use crate::prng::Xoshiro256StarStar;

/// The shape of a synthetic value stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// I.i.d. uniform values in `[0, 1)` — exchangeable input, the case
    /// for which the paper computes the 1/n! worst-case probability.
    Uniform,
    /// Gaussian-increment random walk (σ per step).
    RandomWalk {
        /// Standard deviation of each step.
        sigma: f64,
    },
    /// Strictly ascending ramp — best case for a Max deque (length 1).
    Ascending,
    /// Strictly descending ramp — worst case for a Max deque (fills up).
    Descending,
    /// Descending runs of `period` values, then a jump back up — forces a
    /// full deque flush every `period` tuples.
    Sawtooth {
        /// Length of each descending run.
        period: usize,
    },
    /// A constant value (every arrival ties).
    Constant,
}

impl Workload {
    /// Generate `n` values with the given seed (deterministic).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        match *self {
            Workload::Uniform => (0..n).map(|_| rng.next_f64()).collect(),
            Workload::RandomWalk { sigma } => {
                let mut level = 0.0f64;
                (0..n)
                    .map(|_| {
                        level += sigma * rng.next_normal();
                        level
                    })
                    .collect()
            }
            Workload::Ascending => (0..n).map(|i| i as f64).collect(),
            Workload::Descending => (0..n).map(|i| (n - i) as f64).collect(),
            Workload::Sawtooth { period } => {
                assert!(period >= 1);
                (0..n).map(|i| (period - (i % period)) as f64).collect()
            }
            Workload::Constant => vec![1.0; n],
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::RandomWalk { .. } => "random_walk",
            Workload::Ascending => "ascending",
            Workload::Descending => "descending",
            Workload::Sawtooth { .. } => "sawtooth",
            Workload::Constant => "constant",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let w = Workload::Uniform;
        assert_eq!(w.generate(100, 5), w.generate(100, 5));
    }

    #[test]
    fn ascending_is_sorted() {
        let v = Workload::Ascending.generate(100, 0);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn descending_is_reverse_sorted() {
        let v = Workload::Descending.generate(100, 0);
        assert!(v.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn sawtooth_period() {
        let v = Workload::Sawtooth { period: 4 }.generate(9, 0);
        assert_eq!(v, vec![4.0, 3.0, 2.0, 1.0, 4.0, 3.0, 2.0, 1.0, 4.0]);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let v = Workload::Uniform.generate(10_000, 3);
        assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_walk_wanders() {
        let v = Workload::RandomWalk { sigma: 1.0 }.generate(10_000, 3);
        let spread = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 10.0, "spread {spread}");
    }
}
