//! Keyed tuple streams: `(key, value)` pairs for the sharded engine.
//!
//! The paper's platform processes one keyless stream; production windows
//! are keyed (one logical window per machine, user, symbol, …). This
//! module defines the [`KeyedSource`] abstraction the `swag-engine` crate
//! partitions across shards, plus deterministic keyed variants of the two
//! dataset families:
//!
//! * [`KeyedDebsSource`] — a fleet of DEBS-shaped machines, each an
//!   independent [`DebsGenerator`]; the machine id is the key, mirroring
//!   how the DEBS12 recordings identify equipment.
//! * [`KeyedWorkloadSource`] — a set of keys each carrying an independent
//!   characterised workload stream.
//! * [`KeyedVecSource`] — replay of a pre-materialised keyed stream
//!   (tests, golden inputs).

use crate::debs::{DebsGenerator, ENERGY_CHANNELS};
use crate::prng::Xoshiro256StarStar;
use crate::synthetic::Workload;

/// The key of a keyed tuple (machine id, user id, …).
pub type Key = u64;

/// A pull-based stream of keyed scalar tuples.
pub trait KeyedSource {
    /// The next `(key, value)` tuple, or `None` when exhausted.
    fn next_tuple(&mut self) -> Option<(Key, f64)>;

    /// Collect up to `n` tuples (testing convenience).
    fn take_tuples(&mut self, n: usize) -> Vec<(Key, f64)> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_tuple() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }
}

/// Trait objects forward, so `Box<dyn KeyedSource>` is itself a source
/// (the CLI builds its sources dynamically).
impl<S: KeyedSource + ?Sized> KeyedSource for Box<S> {
    fn next_tuple(&mut self) -> Option<(Key, f64)> {
        (**self).next_tuple()
    }
}

/// Replays a pre-materialised keyed stream once.
#[derive(Debug, Clone)]
pub struct KeyedVecSource {
    tuples: Vec<(Key, f64)>,
    pos: usize,
}

impl KeyedVecSource {
    /// Create a source replaying `tuples` once.
    pub fn new(tuples: Vec<(Key, f64)>) -> Self {
        KeyedVecSource { tuples, pos: 0 }
    }

    /// Tuples remaining.
    pub fn remaining(&self) -> usize {
        self.tuples.len() - self.pos
    }
}

impl KeyedSource for KeyedVecSource {
    fn next_tuple(&mut self) -> Option<(Key, f64)> {
        let t = self.tuples.get(self.pos).copied();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
}

/// An endless fleet of DEBS-shaped machines; the machine id is the key.
///
/// Each machine is an independent, deterministically seeded
/// [`DebsGenerator`]; arrivals interleave uniformly at random (seeded), so
/// per-key order is preserved while the global arrival order is realistic
/// rather than round-robin.
#[derive(Debug, Clone)]
pub struct KeyedDebsSource {
    machines: Vec<DebsGenerator>,
    channel: usize,
    picker: Xoshiro256StarStar,
}

impl KeyedDebsSource {
    /// `machines` independent generators over `channel` (0..3), all
    /// derived from `seed`.
    pub fn new(seed: u64, machines: usize, channel: usize) -> Self {
        assert!(machines >= 1, "at least one machine");
        assert!(channel < ENERGY_CHANNELS, "channel out of range");
        KeyedDebsSource {
            machines: (0..machines)
                .map(|m| {
                    DebsGenerator::new(seed.wrapping_add(0x9E37_79B9).wrapping_mul(m as u64 + 1))
                })
                .collect(),
            channel,
            picker: Xoshiro256StarStar::new(seed ^ 0x5EED_C0DE_0F1E_E7ED),
        }
    }

    /// Number of machines (distinct keys).
    pub fn machines(&self) -> usize {
        self.machines.len()
    }
}

impl KeyedSource for KeyedDebsSource {
    fn next_tuple(&mut self) -> Option<(Key, f64)> {
        let m = self.picker.gen_below(self.machines.len() as u64) as usize;
        let ev = self.machines[m].next()?;
        Some((m as Key, ev.energy[self.channel]))
    }
}

/// An endless keyed stream where every key carries an independent
/// characterised workload.
#[derive(Debug, Clone)]
pub struct KeyedWorkloadSource {
    workload: Workload,
    seed: u64,
    buffers: Vec<Vec<f64>>,
    positions: Vec<usize>,
    chunks: Vec<usize>,
    picker: Xoshiro256StarStar,
}

/// Values generated per key per refill.
const WORKLOAD_CHUNK: usize = 4096;

impl KeyedWorkloadSource {
    /// `keys` independent `workload` streams derived from `seed`.
    pub fn new(workload: Workload, seed: u64, keys: usize) -> Self {
        assert!(keys >= 1, "at least one key");
        KeyedWorkloadSource {
            workload,
            seed,
            buffers: vec![Vec::new(); keys],
            positions: vec![0; keys],
            chunks: vec![0; keys],
            picker: Xoshiro256StarStar::new(seed ^ 0xABCD_EF01_2345_6789),
        }
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> usize {
        self.buffers.len()
    }

    fn refill(&mut self, k: usize) {
        let chunk = self.chunks[k];
        let chunk_seed = self
            .seed
            .wrapping_mul(k as u64 + 1)
            .wrapping_add(chunk as u64);
        self.buffers[k] = self.workload.generate(WORKLOAD_CHUNK, chunk_seed);
        if matches!(self.workload, Workload::Ascending | Workload::Descending) && chunk > 0 {
            // Keep monotone workloads monotone across chunk boundaries.
            let offset = (chunk * WORKLOAD_CHUNK) as f64;
            for v in &mut self.buffers[k] {
                match self.workload {
                    Workload::Ascending => *v += offset,
                    Workload::Descending => *v -= offset,
                    _ => unreachable!(),
                }
            }
        }
        self.chunks[k] += 1;
        self.positions[k] = 0;
    }
}

impl KeyedSource for KeyedWorkloadSource {
    fn next_tuple(&mut self) -> Option<(Key, f64)> {
        let k = self.picker.gen_below(self.buffers.len() as u64) as usize;
        if self.positions[k] == self.buffers[k].len() {
            self.refill(k);
        }
        let v = self.buffers[k][self.positions[k]];
        self.positions[k] += 1;
        Some((k as Key, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Split a keyed stream into per-key value sequences.
    fn per_key(tuples: &[(Key, f64)]) -> HashMap<Key, Vec<f64>> {
        let mut map: HashMap<Key, Vec<f64>> = HashMap::new();
        for &(k, v) in tuples {
            map.entry(k).or_default().push(v);
        }
        map
    }

    #[test]
    fn vec_source_replays_in_order() {
        let mut s = KeyedVecSource::new(vec![(1, 1.0), (2, 2.0), (1, 3.0)]);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.next_tuple(), Some((1, 1.0)));
        assert_eq!(s.take_tuples(5), vec![(2, 2.0), (1, 3.0)]);
        assert_eq!(s.next_tuple(), None);
    }

    #[test]
    fn debs_fleet_is_deterministic_and_covers_all_keys() {
        let a = KeyedDebsSource::new(42, 4, 0).take_tuples(4000);
        let b = KeyedDebsSource::new(42, 4, 0).take_tuples(4000);
        assert_eq!(a, b);
        let keys = per_key(&a);
        assert_eq!(keys.len(), 4);
        for (k, vals) in &keys {
            assert!(vals.len() > 500, "key {k} starved: {}", vals.len());
        }
    }

    #[test]
    fn debs_fleet_keys_carry_independent_streams() {
        let tuples = KeyedDebsSource::new(7, 3, 0).take_tuples(3000);
        let keys = per_key(&tuples);
        let v0 = &keys[&0];
        let v1 = &keys[&1];
        let n = v0.len().min(v1.len());
        assert_ne!(&v0[..n], &v1[..n], "machines must differ");
    }

    #[test]
    fn per_key_debs_stream_matches_standalone_generator() {
        // The interleaving must not perturb per-key order: key k's values
        // are exactly the prefix of machine k's standalone stream.
        let seed = 42u64;
        let tuples = KeyedDebsSource::new(seed, 3, 1).take_tuples(5000);
        let keys = per_key(&tuples);
        for m in 0..3u64 {
            let standalone: Vec<f64> =
                DebsGenerator::new(seed.wrapping_add(0x9E37_79B9).wrapping_mul(m + 1))
                    .take(keys[&m].len())
                    .map(|e| e.energy[1])
                    .collect();
            assert_eq!(keys[&m], standalone, "machine {m}");
        }
    }

    #[test]
    fn keyed_workload_keeps_ramps_monotone_per_key() {
        let mut s = KeyedWorkloadSource::new(Workload::Ascending, 5, 3);
        let tuples = s.take_tuples(20_000);
        for (k, vals) in per_key(&tuples) {
            assert!(
                vals.windows(2).all(|w| w[0] < w[1]),
                "key {k} must keep ascending"
            );
        }
    }

    #[test]
    fn keyed_workload_is_deterministic() {
        let a = KeyedWorkloadSource::new(Workload::Uniform, 9, 5).take_tuples(1000);
        let b = KeyedWorkloadSource::new(Workload::Uniform, 9, 5).take_tuples(1000);
        assert_eq!(a, b);
    }
}
