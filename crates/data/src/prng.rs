//! Vendored pseudo-random number generation: SplitMix64 and xoshiro256**.
//!
//! The workspace builds without crates.io access, so instead of depending
//! on the `rand` crate the generators the datasets need are implemented
//! here from the public-domain reference algorithms (Sebastiano Vigna,
//! <https://prng.di.unimi.it/>): [`SplitMix64`] for seeding and hashing,
//! [`Xoshiro256StarStar`] as the general-purpose stream generator. Both
//! are deterministic across platforms, which the reproducibility story of
//! the experiments (fixed seeds in EXPERIMENTS.md) depends on.

/// SplitMix64: a tiny, fast, well-distributed 64-bit generator.
///
/// Used directly for short derived streams and as the seeding function
/// for [`Xoshiro256StarStar`] (its intended role). Its output function is
/// also a good 64-bit finalizer/hash, exposed as [`mix64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Identical seeds yield identical
    /// streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The SplitMix64 output function: a bijective 64-bit finalizer with good
/// avalanche behaviour. The engine uses it to hash keys onto shards.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256**: the all-purpose generator of the xoshiro family.
///
/// 256 bits of state, period 2^256 − 1, passes BigCrush. Seeded through
/// SplitMix64 so that any 64-bit seed (including 0) produces a
/// well-mixed initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, n)` by Lemire's multiply-shift rejection
    /// method (unbiased).
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_below(0)");
        let mut m = (self.next_u64() as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n; // 2^64 mod n
            while lo < threshold {
                m = (self.next_u64() as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    #[inline]
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.gen_below(hi - lo)
    }

    /// A uniform integer in `[lo, hi)` over `usize`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform integer in `[lo, hi)` over `i64`.
    #[inline]
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.gen_below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.next_f64() < p
    }

    /// A standard-normal sample via Box–Muller (one value per call; the
    /// second root is discarded for simplicity).
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.gen_range_f64(1e-12, 1.0);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C
        // implementation.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut g = Xoshiro256StarStar::new(42);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Xoshiro256StarStar::new(42);
            (0..8).map(|_| g.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut g = Xoshiro256StarStar::new(43);
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_stays_in_unit_interval_with_plausible_mean() {
        let mut g = Xoshiro256StarStar::new(7);
        let vals: Vec<f64> = (0..100_000).map(|_| g.next_f64()).collect();
        assert!(vals.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_below_is_in_range_and_roughly_uniform() {
        let mut g = Xoshiro256StarStar::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[g.gen_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_range_i64_covers_negative_ranges() {
        let mut g = Xoshiro256StarStar::new(3);
        for _ in 0..10_000 {
            let v = g.gen_range_i64(-1000, 1000);
            assert!((-1000..1000).contains(&v));
        }
    }

    #[test]
    fn normal_samples_have_unit_scale() {
        let mut g = Xoshiro256StarStar::new(11);
        let vals: Vec<f64> = (0..50_000).map(|_| g.next_normal()).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Distinct inputs must map to distinct outputs (spot check).
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
