//! NEXMark-shaped auction/bid synthesis for the service scenario suite.
//!
//! NEXMark (Tucker et al., the streaming adaptation of the XMark auction
//! benchmark) drives most modern stream-processor evaluations: an
//! auction site emits *persons*, *auctions*, and a dominating stream of
//! *bids*, with a small set of **hot** auctions and bidders attracting a
//! fixed fraction of the traffic. This module synthesises the bid stream
//! with the same shape knobs as the reference generator:
//!
//! * `hot_auction_ratio = r` — `1 − 1/r` of all bids target a rotating
//!   set of [`HOT_AUCTIONS`] hot auctions (the reference default `r = 2`
//!   sends half the bids to hot auctions), the rest are uniform over the
//!   live-auction id space;
//! * prices follow the reference's log-uniform shape (most bids cheap,
//!   a heavy tail of large ones), **quantised to whole cents** so every
//!   price is exactly representable in `f64` — downstream event-time
//!   restores stay bitwise on these streams;
//! * event time advances `inter_event_ns` per bid with bounded disorder:
//!   each bid's timestamp is displaced backwards by at most
//!   [`NexmarkConfig::max_delay_ns`], so a watermark lagging by that
//!   bound admits every bid.
//!
//! Everything is deterministic from the seed ([`SplitMix64`]), matching
//! the rest of the workspace's replayable datasets.

use crate::prng::SplitMix64;

/// Hot auctions live in this many rotating slots (reference generator:
/// `HOT_AUCTIONS`-sized window over the newest auction ids).
pub const HOT_AUCTIONS: u64 = 4;

/// One bid event: the only NEXMark stream the window queries consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bid {
    /// The auction being bid on (the aggregation key).
    pub auction: u64,
    /// The bidding person.
    pub bidder: u64,
    /// Bid price in whole cents (integer-valued, exact in `f64` —
    /// dollars would put most prices off the binary grid).
    pub price: f64,
    /// Event time in nanoseconds since the stream epoch.
    pub ts: u64,
}

/// Shape knobs for the bid stream.
#[derive(Debug, Clone)]
pub struct NexmarkConfig {
    /// Live auction id space (`auction ∈ [0, auctions)`).
    pub auctions: u64,
    /// Bidder id space.
    pub bidders: u64,
    /// `1 − 1/hot_auction_ratio` of bids go to hot auctions (`0` or `1`
    /// disables the skew).
    pub hot_auction_ratio: u64,
    /// Event-time gap between consecutive bids.
    pub inter_event_ns: u64,
    /// Largest backwards timestamp displacement (bounded disorder; `0`
    /// yields an in-order stream).
    pub max_delay_ns: u64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for NexmarkConfig {
    fn default() -> Self {
        NexmarkConfig {
            auctions: 1000,
            bidders: 10_000,
            hot_auction_ratio: 2,
            inter_event_ns: 1_000,
            max_delay_ns: 0,
            seed: 0x4E45584D,
        }
    }
}

/// The deterministic bid generator (an infinite iterator).
#[derive(Debug, Clone)]
pub struct NexmarkGenerator {
    cfg: NexmarkConfig,
    rng: SplitMix64,
    emitted: u64,
}

impl NexmarkGenerator {
    /// A generator over `cfg`, positioned at the stream epoch.
    pub fn new(cfg: NexmarkConfig) -> Self {
        let rng = SplitMix64::new(cfg.seed);
        NexmarkGenerator {
            cfg,
            rng,
            emitted: 0,
        }
    }

    /// Bids emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The next bid.
    pub fn next_bid(&mut self) -> Bid {
        let cfg = &self.cfg;
        let auction = if cfg.hot_auction_ratio > 1
            && !self.rng.next_u64().is_multiple_of(cfg.hot_auction_ratio)
        {
            // Hot path: one of the newest HOT_AUCTIONS ids, rotating
            // slowly so the hot set drifts like the reference's.
            let rotation = self.emitted / 10_000;
            (rotation + self.rng.next_u64() % HOT_AUCTIONS) % cfg.auctions
        } else {
            self.rng.next_u64() % cfg.auctions
        };
        let bidder = self.rng.next_u64() % cfg.bidders;

        // Log-uniform price in cents over [1, ~$10k]: u ∈ [0,1) maps to
        // 10^(2 + 4u) cents. Truncating to an integer cent count keeps
        // the f64 exact (< 2^53).
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let cents = 10f64.powf(2.0 + 4.0 * u).floor();
        let price = cents.max(1.0);

        let base = self.emitted * cfg.inter_event_ns;
        let delay = if cfg.max_delay_ns == 0 {
            0
        } else {
            self.rng.next_u64() % (cfg.max_delay_ns + 1)
        };
        let ts = base.saturating_sub(delay);

        self.emitted += 1;
        Bid {
            auction,
            bidder,
            price,
            ts,
        }
    }

    /// The next `n` bids as a batch.
    pub fn bids(&mut self, n: usize) -> Vec<Bid> {
        (0..n).map(|_| self.next_bid()).collect()
    }
}

impl Iterator for NexmarkGenerator {
    type Item = Bid;

    fn next(&mut self) -> Option<Bid> {
        Some(self.next_bid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let cfg = NexmarkConfig::default();
        let a = NexmarkGenerator::new(cfg.clone()).bids(1000);
        let b = NexmarkGenerator::new(cfg).bids(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn hot_auctions_attract_about_half_the_bids() {
        let mut g = NexmarkGenerator::new(NexmarkConfig::default());
        let bids = g.bids(20_000);
        // With hot_auction_ratio=2 and 1000 auctions, a uniform stream
        // would put ~0.4% of bids on any 4 ids; the skewed stream puts
        // ~50% on the rotating hot 4.
        let mut counts = std::collections::HashMap::new();
        for b in &bids {
            *counts.entry(b.auction).or_insert(0u64) += 1;
        }
        let mut top: Vec<u64> = counts.values().copied().collect();
        top.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = top.iter().take(HOT_AUCTIONS as usize * 2).sum();
        assert!(
            hot as f64 > 0.4 * bids.len() as f64,
            "hot auctions got only {hot}/{}",
            bids.len()
        );
    }

    #[test]
    fn no_skew_when_ratio_disabled() {
        let mut g = NexmarkGenerator::new(NexmarkConfig {
            hot_auction_ratio: 1,
            auctions: 16,
            ..NexmarkConfig::default()
        });
        let bids = g.bids(16_000);
        let mut counts = [0u64; 16];
        for b in &bids {
            counts[b.auction as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((600..1400).contains(&c), "auction {i}: {c} bids");
        }
    }

    #[test]
    fn prices_are_exact_cents_in_range() {
        let mut g = NexmarkGenerator::new(NexmarkConfig::default());
        for b in g.bids(5000) {
            assert!(b.price >= 1.0 && b.price <= 10_000_000.0, "{}", b.price);
            let cents = b.price; // generator emits whole cent counts
            assert_eq!(cents.fract(), 0.0, "price {cents} not a whole cent");
        }
    }

    #[test]
    fn disorder_is_bounded_and_zero_delay_is_ordered() {
        let cfg = NexmarkConfig {
            max_delay_ns: 5_000,
            inter_event_ns: 1_000,
            ..NexmarkConfig::default()
        };
        let mut g = NexmarkGenerator::new(cfg);
        for (i, b) in g.bids(10_000).into_iter().enumerate() {
            let base = i as u64 * 1_000;
            assert!(b.ts <= base && b.ts >= base.saturating_sub(5_000));
        }
        let mut g = NexmarkGenerator::new(NexmarkConfig::default());
        let bids = g.bids(1000);
        assert!(bids.windows(2).all(|w| w[0].ts <= w[1].ts), "in order");
    }
}
