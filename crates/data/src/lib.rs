//! # swag-data — DEBS12-shaped dataset synthesis and persistence
//!
//! The paper's evaluation replays the DEBS 2012 Grand Challenge dataset
//! (manufacturing-equipment sensor events at 100 Hz: 3 energy readings +
//! 51 state fields per tuple). That dataset is not redistributable, so
//! [`debs`] synthesises a stream of identical shape and ordering
//! statistics (see DESIGN.md §3 for the substitution argument), [`csv`]
//! persists/replays it, and [`synthetic`] provides the characterised
//! workloads (uniform, ramps, sawtooth) the complexity analysis refers to.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod debs;
pub mod synthetic;

pub use debs::{energy_stream, generate, DebsEvent, DebsGenerator, DEBS_SAMPLE_HZ};
pub use synthetic::Workload;
