//! # swag-data — DEBS12-shaped dataset synthesis and persistence
//!
//! The paper's evaluation replays the DEBS 2012 Grand Challenge dataset
//! (manufacturing-equipment sensor events at 100 Hz: 3 energy readings +
//! 51 state fields per tuple). That dataset is not redistributable, so
//! [`debs`] synthesises a stream of identical shape and ordering
//! statistics (see DESIGN.md §3 for the substitution argument), [`csv`]
//! persists/replays it, and [`synthetic`] provides the characterised
//! workloads (uniform, ramps, sawtooth) the complexity analysis refers to.
//!
//! [`keyed`] lifts both families to keyed `(key, value)` streams for the
//! sharded engine (`swag-engine`), [`nexmark`] synthesises the
//! NEXMark-shaped auction/bid stream the resident-service scenario suite
//! (`swag-server`) is driven with, and [`prng`] vendors the
//! SplitMix64/xoshiro256** generators everything draws randomness from,
//! keeping the workspace free of external dependencies.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod debs;
pub mod event;
pub mod keyed;
pub mod nexmark;
pub mod prng;
pub mod synthetic;

pub use debs::{energy_stream, generate, DebsEvent, DebsGenerator, DEBS_SAMPLE_HZ};
pub use event::{DisorderedKeyedSource, KeyedEventSource, KeyedVecEventSource};
pub use keyed::{Key, KeyedDebsSource, KeyedSource, KeyedVecSource, KeyedWorkloadSource};
pub use nexmark::{Bid, NexmarkConfig, NexmarkGenerator};
pub use prng::{mix64, SplitMix64, Xoshiro256StarStar};
pub use synthetic::Workload;
