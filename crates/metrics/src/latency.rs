//! Per-answer latency recording and the summary statistics of the paper's
//! Exp 3 (Fig. 14): Min, 25th percentile, Median, Average, 75th percentile,
//! and Max, with the top 0.005% of samples dropped as outliers.

use std::time::{Duration, Instant};

/// Fraction of the highest latencies dropped as outliers, as in the paper
/// ("We dropped the highest 0.005% latencies from all algorithms").
pub const PAPER_OUTLIER_FRACTION: f64 = 0.005 / 100.0;

/// Records one latency sample (in nanoseconds) per query answer.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty recorder with room for `n` samples (avoids
    /// reallocation noise while measuring).
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder {
            samples_ns: Vec::with_capacity(n),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        self.samples_ns.push(d.as_nanos() as u64); // alloc:amortized sample vec grows geometrically off the measured region
    }

    /// Record one raw nanosecond sample.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Time `f` and record its duration, returning its result.
    #[inline]
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The raw samples in arrival order.
    pub fn samples(&self) -> &[u64] {
        &self.samples_ns
    }

    /// Summarise with the paper's outlier policy (drop the top 0.005%).
    pub fn summarize(&self) -> LatencySummary {
        self.summarize_dropping(PAPER_OUTLIER_FRACTION)
    }

    /// Summarise after dropping the given top fraction of samples.
    pub fn summarize_dropping(&self, top_fraction: f64) -> LatencySummary {
        assert!((0.0..1.0).contains(&top_fraction));
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let dropped = ((sorted.len() as f64) * top_fraction).floor() as usize;
        sorted.truncate(sorted.len() - dropped);
        LatencySummary::from_sorted(&sorted)
    }
}

/// The six statistics of Fig. 14, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples the summary covers (after outlier dropping).
    pub count: usize,
    /// Smallest sample.
    pub min: u64,
    /// 25th percentile.
    pub p25: u64,
    /// Median (50th percentile).
    pub median: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 75th percentile.
    pub p75: u64,
    /// Largest sample (the "latency spike" statistic).
    pub max: u64,
}

impl crate::json::ToJson for LatencySummary {
    fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj(vec![
            ("count", Json::UInt(self.count as u64)),
            ("min", Json::UInt(self.min)),
            ("p25", Json::UInt(self.p25)),
            ("median", Json::UInt(self.median)),
            ("mean", Json::Num(self.mean)),
            ("p75", Json::UInt(self.p75)),
            ("max", Json::UInt(self.max)),
        ])
    }
}

impl LatencySummary {
    /// Build a summary from an ascending slice of samples.
    pub fn from_sorted(sorted: &[u64]) -> Self {
        if sorted.is_empty() {
            return Self::default();
        }
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        LatencySummary {
            count,
            min: sorted[0],
            p25: percentile_sorted(sorted, 25.0),
            median: percentile_sorted(sorted, 50.0),
            mean: sum as f64 / count as f64,
            p75: percentile_sorted(sorted, 75.0),
            max: sorted[count - 1],
        }
    }
}

/// Nearest-rank percentile over an ascending slice.
pub fn percentile_sorted(sorted: &[u64], pct: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&pct));
    let rank = ((pct / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_distribution() {
        let mut rec = LatencyRecorder::new();
        for v in 1..=100u64 {
            rec.record_ns(v);
        }
        let s = rec.summarize_dropping(0.0);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // Nearest-rank median of an even-sized sample rounds up.
        assert_eq!(s.median, 51);
        assert_eq!(s.p25, 26);
        assert_eq!(s.p75, 75);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn outlier_dropping_removes_spikes() {
        let mut rec = LatencyRecorder::new();
        for _ in 0..99_995 {
            rec.record_ns(10);
        }
        for _ in 0..5 {
            rec.record_ns(1_000_000);
        }
        let s = rec.summarize(); // drops 0.005% of 100_000 = 5 samples
        assert_eq!(s.max, 10);
        let raw = rec.summarize_dropping(0.0);
        assert_eq!(raw.max, 1_000_000);
    }

    #[test]
    fn empty_recorder_summarizes_to_zeroes() {
        let rec = LatencyRecorder::new();
        let s = rec.summarize();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn time_records_a_sample() {
        let mut rec = LatencyRecorder::new();
        let out = rec.time(|| 40 + 2);
        assert_eq!(out, 42);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn percentile_edges() {
        let v: Vec<u64> = (0..10).collect();
        assert_eq!(percentile_sorted(&v, 0.0), 0);
        assert_eq!(percentile_sorted(&v, 100.0), 9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}
