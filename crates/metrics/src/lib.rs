//! # swag-metrics — instrumentation for the SWAG experiment platform
//!
//! Latency recording with the paper's Exp 3 statistics ([`latency`]),
//! throughput meters for Exp 1/2 ([`throughput`]), a counting global
//! allocator standing in for the paper's RSS measurement in Exp 4
//! ([`alloc`]), queue-depth gauges for the sharded engine ([`gauge`]),
//! and the dependency-free JSON writer behind every `results/` dump
//! ([`json`]). Aggregate-operation counting (Table 1) lives with the ops
//! themselves in `swag_core::ops::CountingOp`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod gauge;
pub mod json;
pub mod latency;
pub mod throughput;

pub use gauge::QueueDepthGauge;
pub use json::{Json, ToJson};
pub use latency::{LatencyRecorder, LatencySummary};
pub use throughput::{Throughput, ThroughputMeter};
