//! # swag-metrics — instrumentation for the SWAG experiment platform
//!
//! Latency recording with the paper's Exp 3 statistics ([`latency`]),
//! throughput meters for Exp 1/2 ([`throughput`]), a counting global
//! allocator standing in for the paper's RSS measurement in Exp 4
//! ([`alloc`]), queue-depth gauges for the sharded engine ([`gauge`]),
//! the dependency-free JSON writer/parser behind every `results/` dump
//! ([`json`]), the named metric registry and log2 histogram serving the
//! engine's `/metrics` endpoints ([`registry`]), and the sanctioned
//! monotonic-clock facade ([`clock`]). Aggregate-operation counting
//! (Table 1) lives with the ops themselves in
//! `swag_core::ops::CountingOp`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod clock;
pub mod gauge;
pub mod json;
pub mod latency;
pub mod registry;
pub mod throughput;

pub use clock::Stopwatch;
pub use gauge::QueueDepthGauge;
pub use json::{Json, ToJson};
pub use latency::{LatencyRecorder, LatencySummary};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricRegistry, MetricSnapshot, MetricValue,
    RegistrySnapshot,
};
pub use throughput::{Throughput, ThroughputMeter};
