//! # swag-metrics — instrumentation for the SWAG experiment platform
//!
//! Latency recording with the paper's Exp 3 statistics ([`latency`]),
//! throughput meters for Exp 1/2 ([`throughput`]), and a counting global
//! allocator standing in for the paper's RSS measurement in Exp 4
//! ([`alloc`]). Aggregate-operation counting (Table 1) lives with the ops
//! themselves in `swag_core::ops::CountingOp`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod latency;
pub mod throughput;

pub use latency::{LatencyRecorder, LatencySummary};
pub use throughput::{Throughput, ThroughputMeter};
