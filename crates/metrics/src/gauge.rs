//! Queue-depth instrumentation for the sharded engine.
//!
//! Each shard's inbound channel carries a [`QueueDepthGauge`]: the router
//! increments it on every send, the worker decrements on every receive,
//! and a high-watermark records the deepest occupancy seen. The engine
//! reports the watermark per shard in its `EngineStats`, which is how
//! backpressure (a shard pinned at its channel capacity) becomes visible
//! without any sampling thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared occupancy counter with a high-watermark.
///
/// Cloning shares the underlying counters (it is an `Arc` internally), so
/// the producer and consumer sides observe one gauge.
#[derive(Debug, Clone, Default)]
pub struct QueueDepthGauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    depth: AtomicU64,
    max_depth: AtomicU64,
}

impl QueueDepthGauge {
    /// Create a gauge at depth 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one item entering the queue.
    #[inline]
    pub fn enqueued(&self) {
        let now = self.inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.max_depth.fetch_max(now, Ordering::Relaxed);
    }

    /// Record one item leaving the queue.
    #[inline]
    pub fn dequeued(&self) {
        self.inner.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record `n` items entering the queue at once (batched sends).
    #[inline]
    pub fn enqueued_n(&self, n: u64) {
        let now = self.inner.depth.fetch_add(n, Ordering::Relaxed) + n;
        self.inner.max_depth.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `n` items leaving the queue at once (batched receives).
    #[inline]
    pub fn dequeued_n(&self, n: u64) {
        self.inner.depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current occupancy.
    pub fn depth(&self) -> u64 {
        self.inner.depth.load(Ordering::Relaxed)
    }

    /// The deepest occupancy observed so far.
    pub fn max_depth(&self) -> u64 {
        self.inner.max_depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_depth_and_watermark() {
        let g = QueueDepthGauge::new();
        g.enqueued();
        g.enqueued();
        g.enqueued();
        g.dequeued();
        assert_eq!(g.depth(), 2);
        assert_eq!(g.max_depth(), 3);
        g.enqueued();
        g.enqueued();
        assert_eq!(g.max_depth(), 4);
    }

    #[test]
    fn clones_share_state() {
        let g = QueueDepthGauge::new();
        let h = g.clone();
        g.enqueued();
        h.enqueued();
        assert_eq!(g.depth(), 2);
        assert_eq!(h.max_depth(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumer_balance_out() {
        let g = QueueDepthGauge::new();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.enqueued();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumer = {
            let g = g.clone();
            std::thread::spawn(move || {
                for _ in 0..4000 {
                    g.dequeued();
                }
            })
        };
        consumer.join().unwrap();
        assert_eq!(g.depth(), 0);
        assert!(g.max_depth() >= 1000);
    }
}
