//! Queue-depth instrumentation for the sharded engine.
//!
//! Each shard's inbound channel carries a [`QueueDepthGauge`]: the router
//! increments it on every send, the worker decrements on every receive,
//! and a high-watermark records the deepest occupancy seen. The engine
//! reports the watermark per shard in its `EngineStats`, which is how
//! backpressure (a shard pinned at its channel capacity) becomes visible
//! without any sampling thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared occupancy counter with a high-watermark.
///
/// Cloning shares the underlying counters (it is an `Arc` internally), so
/// the producer and consumer sides observe one gauge.
///
/// # Memory-ordering audit
///
/// Every access is `Relaxed`, which is sufficient for two reasons:
///
/// 1. **The gauge never underflows.** `dequeued` runs only after the
///    worker received the item, and the channel's own `send → recv`
///    synchronization makes the producer's `enqueued` happen-before the
///    consumer's `dequeued`. The gauge piggybacks on that edge rather
///    than providing one — it is instrumentation, not a synchronization
///    primitive, and must never be used to publish data.
/// 2. **The watermark is monotone without any ordering.** `fetch_max` is
///    an atomic read-modify-write: each RMW observes the latest value in
///    the location's single modification order, so `max_depth` can only
///    grow, regardless of which threads race. Per-thread read-read
///    coherence then makes successive [`max_depth`](Self::max_depth)
///    calls on one reader monotone: a later load never observes an
///    earlier modification than a previous load did.
///
/// What `Relaxed` gives up is *freshness across locations*: between a
/// writer's `fetch_add` on `depth` and its `fetch_max` on `max_depth`
/// there is a window where a reader can see the raised depth but a stale
/// watermark. [`max_depth`](Self::max_depth) closes the window by
/// *publishing* the depth it loads — it folds the depth into the
/// watermark with its own `fetch_max` rather than merely clamping its
/// return value. A plain clamp (`max(max_load, depth_load)`) would be
/// non-monotone across calls: a high clamped depth could be followed by
/// a lower stale `max_depth` once the queue drains. With the RMW, the
/// watermark location only ever grows, every reader's successive reads
/// are non-decreasing, and the reported value is never below a depth
/// loaded in the same call. The only residual imprecision is a writer's
/// in-flight `enqueued` whose raised depth nobody (writer or reader) has
/// folded in *yet* — bounded by one call per writer, and closed the
/// moment anyone reads. The `watermark_monotone_under_concurrent_load`
/// stress test exercises these guarantees.
#[derive(Debug, Clone, Default)]
pub struct QueueDepthGauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    depth: AtomicU64,
    max_depth: AtomicU64,
}

impl QueueDepthGauge {
    /// Create a gauge at depth 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one item entering the queue.
    #[inline]
    pub fn enqueued(&self) {
        let now = self.inner.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.max_depth.fetch_max(now, Ordering::Relaxed);
    }

    /// Record one item leaving the queue.
    #[inline]
    pub fn dequeued(&self) {
        self.inner.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record `n` items entering the queue at once (batched sends).
    #[inline]
    pub fn enqueued_n(&self, n: u64) {
        let now = self.inner.depth.fetch_add(n, Ordering::Relaxed) + n;
        self.inner.max_depth.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `n` items leaving the queue at once (batched receives).
    #[inline]
    pub fn dequeued_n(&self, n: u64) {
        self.inner.depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current occupancy.
    pub fn depth(&self) -> u64 {
        self.inner.depth.load(Ordering::Relaxed)
    }

    /// The deepest occupancy observed so far, never below a depth loaded
    /// in the same call. Folds the observed depth into the watermark via
    /// `fetch_max` (not a plain clamp) so the reported value is monotone
    /// for every reader — see the type-level ordering audit. This is a
    /// reporting path (stats, scrapes), so the RMW is off the hot path.
    pub fn max_depth(&self) -> u64 {
        let depth = self.inner.depth.load(Ordering::Relaxed);
        let prev = self.inner.max_depth.fetch_max(depth, Ordering::Relaxed);
        prev.max(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_depth_and_watermark() {
        let g = QueueDepthGauge::new();
        g.enqueued();
        g.enqueued();
        g.enqueued();
        g.dequeued();
        assert_eq!(g.depth(), 2);
        assert_eq!(g.max_depth(), 3);
        g.enqueued();
        g.enqueued();
        assert_eq!(g.max_depth(), 4);
    }

    #[test]
    fn clones_share_state() {
        let g = QueueDepthGauge::new();
        let h = g.clone();
        g.enqueued();
        h.enqueued();
        assert_eq!(g.depth(), 2);
        assert_eq!(h.max_depth(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumer_balance_out() {
        let g = QueueDepthGauge::new();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.enqueued();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumer = {
            let g = g.clone();
            std::thread::spawn(move || {
                for _ in 0..4000 {
                    g.dequeued();
                }
            })
        };
        consumer.join().unwrap();
        assert_eq!(g.depth(), 0);
        assert!(g.max_depth() >= 1000);
    }

    /// SplitMix64, seeded: the stress schedule below is reproducible.
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// The ordering-audit claims under fire: with writers doing
    /// randomized enqueue/dequeue batches and readers polling
    /// concurrently, every reader must observe a non-decreasing watermark
    /// across its own successive `max_depth()` reads (the publish-fold
    /// RMW makes the raw returned value monotone — no reader-side
    /// running max needed), and after all writers join the watermark
    /// must dominate every writer's own peak contribution. Seeded so a
    /// failure replays.
    #[test]
    fn watermark_monotone_under_concurrent_load() {
        let g = QueueDepthGauge::new();
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let g = g.clone();
                std::thread::spawn(move || {
                    let mut rng = SplitMix64(0xD5EA_D00D + w);
                    // Pre-fill so randomized dequeues never underflow:
                    // this models the engine, where dequeued() only runs
                    // after a matching enqueued().
                    let mut held = 512u64;
                    g.enqueued_n(held);
                    let mut peak = held;
                    for _ in 0..20_000 {
                        let n = rng.next() % 8 + 1;
                        if rng.next().is_multiple_of(2) {
                            g.enqueued_n(n);
                            held += n;
                            peak = peak.max(held);
                        } else {
                            let n = n.min(held.saturating_sub(1));
                            g.dequeued_n(n);
                            held -= n;
                        }
                    }
                    g.dequeued_n(held);
                    peak
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    let mut last_watermark = 0u64;
                    for _ in 0..50_000 {
                        let watermark = g.max_depth();
                        assert!(
                            watermark >= last_watermark,
                            "watermark regressed: {watermark} < {last_watermark}"
                        );
                        last_watermark = watermark;
                    }
                })
            })
            .collect();
        let mut max_writer_peak = 0u64;
        for w in writers {
            max_writer_peak = max_writer_peak.max(w.join().unwrap());
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(g.depth(), 0);
        // join() synchronizes-with each writer's last RMW, so the final
        // watermark is exact here: it must cover every writer's own peak
        // (global depth was at least that writer's held count).
        assert!(
            g.max_depth() >= max_writer_peak,
            "final watermark {} below a writer's peak {max_writer_peak}",
            g.max_depth()
        );
    }
}
