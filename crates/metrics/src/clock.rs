//! The workspace's sanctioned monotonic-clock facade.
//!
//! `swag-check`'s no-clock lint bans direct `Instant::now` /
//! `SystemTime` use everywhere outside this crate and `swag-trace`:
//! `crates/core` takes no clock at all (algorithm time is logical), and
//! the driver crates (`engine`, `stream`, `slickdeque`) must time things
//! through here, so every wall-clock read in the hot path is attributable
//! to a named instrument rather than scattered ad-hoc timing.

use std::time::{Duration, Instant};

/// A started monotonic timer.
///
/// ```
/// use swag_metrics::clock::Stopwatch;
/// let sw = Stopwatch::start();
/// let ns = sw.elapsed_ns();
/// assert!(sw.elapsed() >= std::time::Duration::from_nanos(ns));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time since [`start`](Self::start).
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time since [`start`](Self::start) in nanoseconds, saturating at
    /// `u64::MAX` (585 years — effectively never).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        let ns = self.started.elapsed().as_nanos();
        ns.min(u64::MAX as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::from_nanos(b));
    }
}
