//! A minimal JSON document builder and pretty-printer.
//!
//! The workspace builds without crates.io access, so the result dumps the
//! bench harness writes under `results/` are produced by this ~100-line
//! substitute for `serde_json`: a [`Json`] value tree plus a stable
//! 2-space pretty printer. Only what the reports need is implemented —
//! objects keep insertion order, numbers render like Rust's `Display`
//! (with `null` standing in for non-finite floats, as in `serde_json`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by mapping `items`.
    pub fn arr<T>(items: impl IntoIterator<Item = T>, f: impl Fn(T) -> Json) -> Json {
        Json::Arr(items.into_iter().map(f).collect())
    }

    /// Render with 2-space indentation and a trailing newline, matching
    /// the shape `serde_json::to_string_pretty` produced for the existing
    /// files under `results/`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(
            Json::UInt(18446744073709551615).pretty(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::str("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let doc = Json::obj(vec![
            ("id", Json::str("exp")),
            ("rows", Json::arr(vec![1u64, 2], Json::UInt)),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            doc.pretty(),
            "{\n  \"id\": \"exp\",\n  \"rows\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_keep_precision() {
        // `{x:?}` prints the shortest representation that round-trips.
        assert_eq!(Json::Num(0.1).pretty(), "0.1");
        assert_eq!(Json::Num(1.0).pretty(), "1.0");
        assert_eq!(Json::Num(1e300).pretty(), "1e300");
    }
}
