//! A minimal JSON document builder and pretty-printer.
//!
//! The workspace builds without crates.io access, so the result dumps the
//! bench harness writes under `results/` are produced by this ~100-line
//! substitute for `serde_json`: a [`Json`] value tree plus a stable
//! 2-space pretty printer. Only what the reports need is implemented —
//! objects keep insertion order, numbers render like Rust's `Display`
//! (with `null` standing in for non-finite floats, as in `serde_json`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (renders without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by mapping `items`.
    pub fn arr<T>(items: impl IntoIterator<Item = T>, f: impl Fn(T) -> Json) -> Json {
        Json::Arr(items.into_iter().map(f).collect())
    }

    /// Render with 2-space indentation and a trailing newline, matching
    /// the shape `serde_json::to_string_pretty` produced for the existing
    /// files under `results/`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (or a non-negative
    /// `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a float (`Num`, `Int`, and `UInt` all qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document. The counterpart of [`pretty`](Self::pretty):
    /// a small recursive-descent parser covering the full JSON grammar, so
    /// result dumps, flight-recorder post-mortems, and `/metrics.json`
    /// bodies can be read back without external crates. Integers without a
    /// fraction or exponent parse as `UInt`/`Int`; everything else numeric
    /// as `Num`.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("invalid number {text:?}: {e}"))
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(
            Json::UInt(18446744073709551615).pretty(),
            "18446744073709551615"
        );
        assert_eq!(Json::Num(1.5).pretty(), "1.5");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::str("a\"b\\c\n").pretty(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn nested_structure_pretty_prints() {
        let doc = Json::obj(vec![
            ("id", Json::str("exp")),
            ("rows", Json::arr(vec![1u64, 2], Json::UInt)),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            doc.pretty(),
            "{\n  \"id\": \"exp\",\n  \"rows\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_keep_precision() {
        // `{x:?}` prints the shortest representation that round-trips.
        assert_eq!(Json::Num(0.1).pretty(), "0.1");
        assert_eq!(Json::Num(1.0).pretty(), "1.0");
        assert_eq!(Json::Num(1e300).pretty(), "1e300");
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let doc = Json::obj(vec![
            ("id", Json::str("exp \"quoted\"\n")),
            ("rows", Json::arr(vec![1u64, 2], Json::UInt)),
            ("neg", Json::Int(-3)),
            ("pi", Json::Num(3.25)),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_accessors_navigate() {
        let doc = Json::parse(r#"{"a": {"b": [1, "x", 2.5]}, "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        let arr = doc
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(arr[2].as_f64(), Some(2.5));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let doc = Json::parse(r#"{"s": "a\n\tA\\ λ"}"#).unwrap();
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\n\tA\\ λ"));
    }
}
