//! Throughput measurement: results (or shared-plan slides) per second, the
//! metric of the paper's Exp 1 and Exp 2.

use std::time::{Duration, Instant};

/// A running throughput meter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    items: u64,
}

impl ThroughputMeter {
    /// Start measuring now.
    pub fn start() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            items: 0,
        }
    }

    /// Count one processed item (a query result or a plan slide).
    #[inline]
    pub fn tick(&mut self) {
        self.items += 1;
    }

    /// Count `n` processed items.
    #[inline]
    pub fn tick_n(&mut self, n: u64) {
        self.items += n;
    }

    /// Items counted so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Elapsed wall-clock time since [`start`](Self::start).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Finish and report.
    pub fn finish(self) -> Throughput {
        Throughput {
            items: self.items,
            elapsed: self.started.elapsed(),
        }
    }
}

/// A completed throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Items processed.
    pub items: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl Throughput {
    /// Build directly from a count and a duration.
    pub fn new(items: u64, elapsed: Duration) -> Self {
        Throughput { items, elapsed }
    }

    /// Items per second.
    pub fn per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.items as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_items() {
        let mut m = ThroughputMeter::start();
        for _ in 0..10 {
            m.tick();
        }
        m.tick_n(5);
        let t = m.finish();
        assert_eq!(t.items, 15);
        assert!(t.per_second() > 0.0);
    }

    #[test]
    fn per_second_math() {
        let t = Throughput::new(1000, Duration::from_secs(2));
        assert!((t.per_second() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_infinite() {
        let t = Throughput::new(10, Duration::ZERO);
        assert!(t.per_second().is_infinite());
    }
}
