//! A counting global allocator for the memory experiment (Exp 4 /
//! Fig. 15).
//!
//! The paper measures the maximum resident set size of each algorithm's
//! process. A child-process RSS measurement is noisy and
//! platform-dependent; counting live heap bytes at the allocator measures
//! the same quantity the paper's §4.2 space analysis predicts (`n` vs `2n`
//! vs `3n` …) without the noise, preserving the relative factors the paper
//! reports. Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: swag_metrics::alloc::CountingAllocator = CountingAllocator;
//! ```
//!
//! then bracket a measurement with [`reset_peak`] / [`peak_bytes`].

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a SAFETY comment (enforced by swag-check).
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-delegating allocator that tracks current and peak live
/// bytes.
pub struct CountingAllocator;

// SAFETY: delegates allocation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller upholds `GlobalAlloc::alloc`'s contract
        // (non-zero-sized, valid layout), which we pass through untouched.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: the caller guarantees `ptr` came from this allocator
        // with this `layout`; we forward both to `System` unchanged.
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: the caller guarantees `ptr`/`layout` describe a live
        // allocation from this allocator and `new_size` is non-zero.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Count the new block before releasing the old one: during the
            // copy both blocks are live, and crediting first also keeps the
            // watermark monotone under concurrent `add` calls — sub-first
            // would transiently undercount and could miss a true peak.
            add(new_size);
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        new_ptr
    }
}

#[inline]
fn add(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Lock-free peak update.
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Highest live-byte watermark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak watermark to the current live bytes.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Measure the peak heap growth while running `f`: returns `(result,
/// peak_delta_bytes)`, where the delta is relative to the live bytes at
/// entry. Only meaningful in a binary that installs [`CountingAllocator`].
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = current_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so counters stay at
    // zero; these tests cover the bookkeeping arithmetic itself.
    #[test]
    fn peak_tracks_watermark() {
        reset_peak();
        add(100);
        assert!(peak_bytes() >= 100);
        CURRENT.fetch_sub(100, std::sync::atomic::Ordering::Relaxed);
        assert!(current_bytes() < peak_bytes() || peak_bytes() == 0);
    }

    #[test]
    fn measure_peak_returns_result() {
        let (v, _bytes) = measure_peak(|| 7 * 6);
        assert_eq!(v, 42);
    }
}
