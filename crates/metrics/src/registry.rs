//! A named metric registry: atomic counters and gauges plus a
//! log2-bucketed latency histogram, snapshotted for exposition.
//!
//! Instruments are cheap shared handles (an `Arc` around atomics): the
//! hot path holds the handle and updates it with relaxed atomic
//! operations; the registry remembers `(name, labels) → instrument` so a
//! scrape can snapshot every series at once. Registration is the only
//! locked operation and happens at setup time.
//!
//! Two expositions are supported from one [`RegistrySnapshot`]:
//! Prometheus text format ([`RegistrySnapshot::to_prometheus_text`]) and
//! JSON ([`ToJson`]), which back the engine's `/metrics` and
//! `/metrics.json` endpoints.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::gauge::QueueDepthGauge;
use crate::json::{Json, ToJson};

/// A monotonically increasing counter (wraps at `u64::MAX`).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter at zero (registry-less use in tests and
    /// benches).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue sizes, key counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// A free-standing gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Increase by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrease by `n` (saturating via wrapping is the caller's problem;
    /// the engine's protocols never go below zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values `v` with `2^(i-1) ≤ v < 2^i` (i.e. bit length
/// `i`), up to bucket 64 for values with the top bit set.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length (0 for 0).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value reported for quantiles
/// that fall in the bucket).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free log2-bucketed histogram of `u64` samples (latencies in
/// nanoseconds, queue depths, …).
///
/// Recording is a handful of relaxed atomic adds. The bucket layout is
/// coarse (one bucket per power of two) but mergeable across shards and
/// cheap enough for per-slide recording; exact `min`/`max` are tracked on
/// the side so the worst case — the paper's latency-spike statistic — is
/// never rounded.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // check:allow bucket_index maps every u64 into the fixed bucket table
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Concurrent recording may leave the copy a
    /// sample ahead/behind across fields; each field is itself exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable across shards and
/// queryable for quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one. Bucket-exact: merging the
    /// snapshots of two histograms equals the snapshot of one histogram
    /// fed both sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket the
    /// nearest-rank sample falls in, clamped to the exact observed `max`.
    /// Guarantees `true_quantile ≤ quantile(q) ≤ 2 × true_quantile` for
    /// positive samples (the log2-bucket bound) and `quantile(1.0) ==
    /// max` exactly. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The samples recorded between `earlier` and `self` (two snapshots
    /// of the *same* cumulative histogram): bucket-wise difference, used
    /// by the SLO evaluator to compute quantiles over one evaluation
    /// window rather than the whole run. `min`/`max` cannot be recovered
    /// for a window from cumulative state, so the delta carries the
    /// widest consistent bounds: the nonzero bucket range. Saturates if
    /// `earlier` is not actually earlier.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: u64::MAX,
            max: 0,
        };
        for (i, &c) in out.buckets.iter().enumerate() {
            if c > 0 {
                out.min = out
                    .min
                    .min(if i == 0 { 0 } else { bucket_upper(i - 1) + 1 });
                out.max = out.max.max(bucket_upper(i));
            }
        }
        // Tighten with the cumulative exact bounds where they still
        // apply: the window's samples are a subset of the run's.
        out.max = out.max.min(self.max);
        if out.count > 0 {
            out.min = out.min.max(self.min);
        }
        out
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        let nonzero: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        Json::obj(vec![
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            (
                "min",
                Json::UInt(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max", Json::UInt(self.max)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::UInt(self.quantile(0.50))),
            ("p99", Json::UInt(self.quantile(0.99))),
            ("p999", Json::UInt(self.quantile(0.999))),
            (
                "buckets",
                Json::arr(nonzero, |(i, c)| {
                    Json::obj(vec![
                        ("le", Json::UInt(bucket_upper(i))),
                        ("count", Json::UInt(c)),
                    ])
                }),
            ),
        ])
    }
}

/// The instrument behind one registered series.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    /// Live occupancy of a [`QueueDepthGauge`].
    QueueDepth(QueueDepthGauge),
    /// High-watermark of a [`QueueDepthGauge`].
    QueueDepthMax(QueueDepthGauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A registry of named instruments, snapshot-able for exposition.
///
/// Registration order is preserved in snapshots and renderings (the
/// byte-exact exposition tests rely on this). Registering the same
/// `(name, labels)` counter/gauge/histogram twice returns the existing
/// handle, so re-running an engine against one registry accumulates into
/// the same series (Prometheus semantics) instead of duplicating it.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    entries: Mutex<Vec<Entry>>,
}

fn labels_of(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        // A poisoned registry only means another thread panicked while
        // registering; the data (handles) is still coherent.
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Register (or fetch) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = labels_of(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Instrument::Counter(c) = &e.instrument {
                    return c.clone();
                }
            }
        }
        let counter = Counter::new();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: Instrument::Counter(counter.clone()),
        });
        counter
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = labels_of(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Instrument::Gauge(g) = &e.instrument {
                    return g.clone();
                }
            }
        }
        let gauge = Gauge::new();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: Instrument::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Register (or fetch) a histogram series.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let labels = labels_of(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Instrument::Histogram(h) = &e.instrument {
                    return h.clone();
                }
            }
        }
        let histogram = Histogram::new();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument: Instrument::Histogram(histogram.clone()),
        });
        histogram
    }

    /// Expose an existing [`QueueDepthGauge`] as two gauge series: the
    /// live occupancy under `name` and its high-watermark under
    /// `name_max`. The gauge stays the single source of truth — the
    /// registry reads the same atomics the router and worker update.
    pub fn queue_depth(
        &self,
        name: &str,
        name_max: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: &QueueDepthGauge,
    ) {
        let labels = labels_of(labels);
        let mut entries = self.lock();
        entries.retain(|e| !((e.name == name || e.name == name_max) && e.labels == labels));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.clone(),
            instrument: Instrument::QueueDepth(gauge.clone()),
        });
        entries.push(Entry {
            name: name_max.to_string(),
            help: format!("{help} (high watermark)"),
            labels,
            instrument: Instrument::QueueDepthMax(gauge.clone()),
        });
    }

    /// Snapshot every registered series, in registration order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.lock();
        RegistrySnapshot {
            metrics: entries
                .iter()
                .map(|e| MetricSnapshot {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::QueueDepth(g) => MetricValue::Gauge(g.depth()),
                        Instrument::QueueDepthMax(g) => MetricValue::Gauge(g.max_depth()),
                        Instrument::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }
}

/// One series' sampled value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Cumulative counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(u64),
    /// Bucketed distribution (boxed: a snapshot carries 65 buckets and
    /// would otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One sampled series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Series name (Prometheus-style, e.g. `swag_engine_tuples_total`).
    pub name: String,
    /// Human description.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// A whole registry sampled at one point in time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Every series, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, String)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&v);
        out.push('"');
    }
    out.push('}');
}

impl RegistrySnapshot {
    /// Render in Prometheus text exposition format (version 0.0.4).
    /// `# HELP` / `# TYPE` headers are emitted at a name's first
    /// occurrence; histograms expose cumulative `_bucket{le=…}` series
    /// for non-empty buckets plus `le="+Inf"`, `_sum`, and `_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if !seen.contains(&m.name.as_str()) {
                seen.push(&m.name);
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
                out.push_str(&format!("# TYPE {} {}\n", m.name, m.value.type_name()));
            }
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&m.name);
                    render_labels(&mut out, &m.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        out.push_str(&format!("{}_bucket", m.name));
                        render_labels(
                            &mut out,
                            &m.labels,
                            Some(("le", bucket_upper(i).to_string())),
                        );
                        out.push_str(&format!(" {cum}\n"));
                    }
                    out.push_str(&format!("{}_bucket", m.name));
                    render_labels(&mut out, &m.labels, Some(("le", "+Inf".to_string())));
                    out.push_str(&format!(" {}\n", h.count));
                    out.push_str(&format!("{}_sum", m.name));
                    render_labels(&mut out, &m.labels, None);
                    out.push_str(&format!(" {}\n", h.sum));
                    out.push_str(&format!("{}_count", m.name));
                    render_labels(&mut out, &m.labels, None);
                    out.push_str(&format!(" {}\n", h.count));
                }
            }
        }
        out
    }

    /// Merge every histogram series named `name` (across label sets,
    /// e.g. all shards) into one distribution.
    pub fn merged_histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for m in &self.metrics {
            if m.name == name {
                if let MetricValue::Histogram(h) = &m.value {
                    match merged.as_mut() {
                        Some(acc) => acc.merge(h),
                        None => merged = Some((**h).clone()),
                    }
                }
            }
        }
        merged
    }

    /// Sum every counter/gauge series named `name` across label sets.
    pub fn sum(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
                MetricValue::Histogram(h) => h.count,
            })
            .sum()
    }

    /// The subset of series carrying the label `key`=`value` — e.g. one
    /// pipeline's slice of a registry shared by many. Composes with
    /// [`sum`](Self::sum) / [`max`](Self::max) /
    /// [`merged_histogram`](Self::merged_histogram).
    pub fn labelled(&self, key: &str, value: &str) -> RegistrySnapshot {
        RegistrySnapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|m| m.labels.iter().any(|(k, v)| k == key && v == value))
                .cloned()
                .collect(),
        }
    }

    /// The largest counter/gauge value named `name` across label sets
    /// (0 when absent). The right fold for per-shard gauges where the sum
    /// is meaningless — e.g. watermark lag, where the engine's lag is the
    /// worst shard's lag.
    pub fn max(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
                MetricValue::Histogram(h) => h.max,
            })
            .max()
            .unwrap_or(0)
    }
}

impl ToJson for RegistrySnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![(
            "metrics",
            Json::arr(self.metrics.iter(), |m| {
                let labels = Json::Obj(
                    m.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v.as_str())))
                        .collect(),
                );
                let mut pairs = vec![
                    ("name", Json::str(m.name.as_str())),
                    ("type", Json::str(m.value.type_name())),
                    ("labels", labels),
                ];
                match &m.value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        pairs.push(("value", Json::UInt(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        pairs.push(("histogram", h.to_json()));
                    }
                }
                Json::obj(pairs)
            }),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the workspace's seeded test generator, inlined so the
    /// metrics crate stays dependency-free.
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn counters_and_gauges_register_and_dedup() {
        let reg = MetricRegistry::new();
        let c1 = reg.counter("tuples_total", "tuples", &[("shard", "0")]);
        let c2 = reg.counter("tuples_total", "tuples", &[("shard", "0")]);
        let c3 = reg.counter("tuples_total", "tuples", &[("shard", "1")]);
        c1.add(5);
        c2.inc();
        c3.add(10);
        assert_eq!(c1.get(), 6, "same series, same handle");
        let g = reg.gauge("keys", "distinct keys", &[]);
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        assert_eq!(snap.sum("tuples_total"), 16);
    }

    /// Golden test pinning the exact bucket boundaries: bucket index is
    /// the value's bit length, bucket `i`'s inclusive upper bound is
    /// `2^i − 1`.
    #[test]
    fn bucket_boundaries_are_pinned() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);

        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), (1u64 << 63) - 1);
        assert_eq!(bucket_upper(64), u64::MAX);

        // Every boundary is tight: the upper bound lands in its own
        // bucket and the next value in the next bucket.
        for i in 1..=62usize {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i);
            assert_eq!(bucket_index(upper + 1), i + 1);
        }
    }

    #[test]
    fn histogram_tracks_exact_min_max_and_quantile_one() {
        let h = Histogram::new();
        for v in [5u64, 900, 17, 0, 3_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3_000_000);
        assert_eq!(s.sum, 5 + 900 + 17 + 3_000_000);
        assert_eq!(s.quantile(1.0), 3_000_000, "p100 is the exact max");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    /// Element-wise nearest-rank quantile, the reference the histogram's
    /// bucketed estimate must bound.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Property: merged-histogram quantiles bound the element-wise
    /// quantiles of the combined sample set — `t ≤ estimate ≤ 2·t` — and
    /// merging is bucket-exact (merge of snapshots == snapshot of the
    /// union stream).
    #[test]
    fn merge_quantiles_bound_elementwise_quantiles() {
        let mut rng = SplitMix64(0xBEEF_2024);
        for round in 0..50 {
            let n1 = 1 + (rng.next() % 400) as usize;
            let n2 = 1 + (rng.next() % 400) as usize;
            let h1 = Histogram::new();
            let h2 = Histogram::new();
            let union = Histogram::new();
            let mut all: Vec<u64> = Vec::with_capacity(n1 + n2);
            for i in 0..n1 + n2 {
                // Spread samples across many octaves, including 0; cap
                // at 2^52 so the 800-sample sum stays far from u64::MAX
                // (merge saturates, live recording wraps — equal only
                // without overflow).
                let v = (rng.next() >> 12) >> (rng.next() % 52);
                let v = if v.is_multiple_of(97) { 0 } else { v };
                if i < n1 { &h1 } else { &h2 }.record(v);
                union.record(v);
                all.push(v);
            }
            all.sort_unstable();

            let mut merged = h1.snapshot();
            merged.merge(&h2.snapshot());
            assert_eq!(merged, union.snapshot(), "round {round}: merge is exact");

            for q in [0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let t = exact_quantile(&all, q);
                let est = merged.quantile(q);
                assert!(
                    t <= est,
                    "round {round} q={q}: estimate {est} below true {t}"
                );
                assert!(
                    est as u128 <= 2 * t.max(1) as u128,
                    "round {round} q={q}: estimate {est} above 2×true {t}"
                );
            }
        }
    }

    /// Golden test: byte-exact Prometheus text body for a fixed registry
    /// (the engine's `/metrics` endpoint serves exactly this rendering).
    #[test]
    fn prometheus_exposition_is_byte_exact() {
        let reg = MetricRegistry::new();
        let c0 = reg.counter(
            "swag_engine_tuples_total",
            "Tuples processed",
            &[("shard", "0")],
        );
        let c1 = reg.counter(
            "swag_engine_tuples_total",
            "Tuples processed",
            &[("shard", "1")],
        );
        let depth = QueueDepthGauge::new();
        depth.enqueued_n(5);
        depth.dequeued_n(2);
        reg.queue_depth(
            "swag_engine_queue_depth",
            "swag_engine_queue_depth_peak",
            "Inbound queue occupancy",
            &[("shard", "0")],
            &depth,
        );
        let h = reg.histogram("swag_slide_latency_ns", "Per-run slide latency", &[]);
        c0.add(100);
        c1.add(50);
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        let text = reg.snapshot().to_prometheus_text();
        let expected = "\
# HELP swag_engine_tuples_total Tuples processed
# TYPE swag_engine_tuples_total counter
swag_engine_tuples_total{shard=\"0\"} 100
swag_engine_tuples_total{shard=\"1\"} 50
# HELP swag_engine_queue_depth Inbound queue occupancy
# TYPE swag_engine_queue_depth gauge
swag_engine_queue_depth{shard=\"0\"} 3
# HELP swag_engine_queue_depth_peak Inbound queue occupancy (high watermark)
# TYPE swag_engine_queue_depth_peak gauge
swag_engine_queue_depth_peak{shard=\"0\"} 5
# HELP swag_slide_latency_ns Per-run slide latency
# TYPE swag_slide_latency_ns histogram
swag_slide_latency_ns_bucket{le=\"1\"} 1
swag_slide_latency_ns_bucket{le=\"3\"} 3
swag_slide_latency_ns_bucket{le=\"1023\"} 4
swag_slide_latency_ns_bucket{le=\"+Inf\"} 4
swag_slide_latency_ns_sum 906
swag_slide_latency_ns_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_exposition_parses_back() {
        let reg = MetricRegistry::new();
        reg.counter("a_total", "a", &[("shard", "0")]).add(3);
        let h = reg.histogram("lat_ns", "latency", &[("shard", "0")]);
        h.record(10);
        h.record(1000);
        let json = reg.snapshot().to_json().pretty();
        let doc = Json::parse(&json).expect("exposition JSON parses");
        let metrics = doc.get("metrics").and_then(Json::as_array).unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(metrics[0].get("value").and_then(Json::as_u64), Some(3));
        let hist = metrics[1].get("histogram").unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(hist.get("max").and_then(Json::as_u64), Some(1000));
    }

    #[test]
    fn merged_histogram_spans_label_sets() {
        let reg = MetricRegistry::new();
        let h0 = reg.histogram("lat", "l", &[("shard", "0")]);
        let h1 = reg.histogram("lat", "l", &[("shard", "1")]);
        h0.record(1);
        h1.record(1_000_000);
        let merged = reg.snapshot().merged_histogram("lat").unwrap();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.min, 1);
        assert_eq!(merged.max, 1_000_000);
        assert!(reg.snapshot().merged_histogram("absent").is_none());
    }
}
