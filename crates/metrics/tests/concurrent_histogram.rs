//! Histogram merge and quantile estimation under concurrent recording.
//!
//! The SLO evaluator and the trace exporter both read histograms while
//! shard workers and ingest threads are still recording into them, so
//! the quantile bound `t ≤ est ≤ 2t` (log2 buckets) has to survive
//! concurrency, not just the single-threaded golden tests in
//! `registry.rs`. Everything here is seeded — failures replay exactly.

use swag_metrics::registry::{bucket_index, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// SplitMix64, inlined: the workspace test-side PRNG idiom (seeded, no
/// dependencies).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A positive sample with a heavy tail: latencies span ~9 orders of
    /// magnitude, so exercise many buckets.
    fn sample(&mut self) -> u64 {
        let magnitude = self.next() % 30; // bucket spread: 1 .. 2^30
        (self.next() % (1u64 << magnitude.max(1))).max(1)
    }
}

/// Nearest-rank quantile over an already-sorted sample set (the exact
/// reference the histogram estimate is bounded against).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_quantile_bound(snap: &HistogramSnapshot, sorted: &[u64], what: &str) {
    for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
        let t = true_quantile(sorted, q);
        let est = snap.quantile(q);
        assert!(
            t <= est && est <= 2 * t,
            "{what}: q={q}: true {t} ≤ est {est} ≤ {} violated",
            2 * t
        );
    }
    assert_eq!(snap.quantile(1.0), snap.max, "{what}: p100 must be exact");
}

/// Seeded multi-thread stress: many writers into ONE histogram while a
/// reader snapshots continuously. Mid-run snapshots must be monotone
/// (cumulative atomics never decrease); the final state must be
/// bucket-exact against a sequential replay of every stream.
#[test]
fn concurrent_recording_is_monotone_and_bucket_exact() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 20_000;
    let hist = Histogram::new();
    let stop = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let hist = hist.clone();
            s.spawn(move || {
                let mut rng = SplitMix64(0xD1CE + t);
                for _ in 0..PER_THREAD {
                    hist.record(rng.sample());
                }
            });
        }
        let reader = {
            let hist = hist.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut last = HistogramSnapshot::default();
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = hist.snapshot();
                    assert!(snap.count >= last.count, "count went backwards");
                    for i in 0..HISTOGRAM_BUCKETS {
                        assert!(
                            snap.buckets[i] >= last.buckets[i],
                            "bucket {i} went backwards"
                        );
                    }
                    last = snap;
                    reads += 1;
                }
                reads
            })
        };
        // Writers finish when the scope joins them; signal the reader
        // once count reaches the target so it exits too.
        while hist.count() < THREADS * PER_THREAD {
            std::hint::spin_loop();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0, "reader never snapshotted");
    });

    // Sequential replay: the final concurrent state must be bucket-exact.
    let mut expect_buckets = [0u64; HISTOGRAM_BUCKETS];
    let (mut expect_sum, mut expect_min, mut expect_max) = (0u64, u64::MAX, 0u64);
    let mut all: Vec<u64> = Vec::new();
    for t in 0..THREADS {
        let mut rng = SplitMix64(0xD1CE + t);
        for _ in 0..PER_THREAD {
            let v = rng.sample();
            expect_buckets[bucket_index(v)] += 1;
            expect_sum += v;
            expect_min = expect_min.min(v);
            expect_max = expect_max.max(v);
            all.push(v);
        }
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets, expect_buckets);
    assert_eq!(snap.sum, expect_sum);
    assert_eq!(snap.min, expect_min);
    assert_eq!(snap.max, expect_max);

    all.sort_unstable();
    assert_quantile_bound(&snap, &all, "single shared histogram");
}

/// Property: merging per-thread histograms recorded concurrently equals
/// one histogram fed every stream, and the merged quantiles stay inside
/// `t ≤ est ≤ 2t` of the exact combined distribution. 16 seeded cases.
#[test]
fn merged_quantiles_stay_within_log2_bound_across_threads() {
    for case in 0..16u64 {
        const THREADS: u64 = 3;
        let per_thread = 2_000 + (case * 977) % 3_000;
        let hists: Vec<Histogram> = (0..THREADS).map(|_| Histogram::new()).collect();
        std::thread::scope(|s| {
            for (t, h) in hists.iter().enumerate() {
                let h = h.clone();
                s.spawn(move || {
                    let mut rng = SplitMix64(case * 31 + t as u64);
                    for _ in 0..per_thread {
                        h.record(rng.sample());
                    }
                });
            }
        });
        let mut merged = HistogramSnapshot::default();
        for h in &hists {
            merged.merge(&h.snapshot());
        }
        let mut all: Vec<u64> = Vec::new();
        for t in 0..THREADS {
            let mut rng = SplitMix64(case * 31 + t);
            for _ in 0..per_thread {
                all.push(rng.sample());
            }
        }
        all.sort_unstable();
        assert_eq!(merged.count, all.len() as u64, "case {case}");
        assert_quantile_bound(&merged, &all, &format!("case {case} merged"));
    }
}

/// Snapshots taken WHILE writers are mid-stream must still give sane
/// quantiles: every estimate is bounded by twice the largest value any
/// stream can have produced, and `quantile` never panics on a torn view.
#[test]
fn mid_stream_snapshots_give_bounded_quantiles() {
    let hist = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let hist = hist.clone();
            s.spawn(move || {
                let mut rng = SplitMix64(0xBEEF + t);
                for _ in 0..50_000 {
                    hist.record(rng.sample());
                }
            });
        }
        let hist = hist.clone();
        s.spawn(move || loop {
            let snap = hist.snapshot();
            if snap.count > 0 {
                for q in [0.5, 0.99, 1.0] {
                    let est = snap.quantile(q);
                    assert!(
                        est <= 1u64 << 31,
                        "estimate {est} exceeds any possible sample"
                    );
                }
            }
            if snap.count >= 100_000 {
                break;
            }
        });
    });
}

/// The delta of two snapshots of one cumulative histogram isolates the
/// window's samples: exact count, and quantiles within the log2 bound of
/// the window's own distribution (the SLO evaluator's burn-rate input).
#[test]
fn window_delta_quantiles_bound_the_window_not_the_run() {
    let hist = Histogram::new();
    let mut rng = SplitMix64(7);
    // Epoch A: small values only.
    for _ in 0..5_000 {
        hist.record(rng.next() % 64 + 1);
    }
    let s1 = hist.snapshot();
    // Epoch B (the window): values two orders of magnitude larger.
    let mut window: Vec<u64> = Vec::new();
    for _ in 0..5_000 {
        let v = 10_000 + rng.next() % 50_000;
        window.push(v);
        hist.record(v);
    }
    let s2 = hist.snapshot();
    let d = s2.delta(&s1);
    assert_eq!(d.count, 5_000);
    assert_eq!(d.sum, s2.sum - s1.sum);
    window.sort_unstable();
    for q in [0.5, 0.99, 0.999] {
        let t = true_quantile(&window, q);
        let est = d.quantile(q);
        assert!(
            t <= est && est <= 2 * t,
            "window q={q}: true {t} ≤ est {est} ≤ {} violated",
            2 * t
        );
        // The run-wide quantile would be wrong here: the run's p50 sits
        // in epoch A's range, far below the window's true p50.
        assert!(est > 128, "window estimate leaked epoch A samples");
    }
    // Degenerate order: delta of an older snapshot against a newer one
    // saturates to empty instead of underflowing.
    let rev = s1.delta(&s2);
    assert_eq!(rev.count, 0);
    assert_eq!(rev.quantile(0.99), 0);
}
