//! Partial-aggregation techniques — Panes, Pairs, and Cutty-slicing
//! (paper §2.1, Figs. 1-3).
//!
//! A PAT decides where the incoming tuple stream is cut into partial
//! aggregates for a given query. Each technique is expressed as the set of
//! *edge offsets* it marks inside one slide period: a fragment ends at each
//! edge. The shared-plan builder (see [`crate::shared`]) takes the union of
//! these edges across all queries on the composite slide.

use crate::query::Query;

/// Which partial-aggregation technique cuts the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pat {
    /// Panes: fragments of `gcd(range, slide)` tuples (Fig. 1).
    Panes,
    /// Paired windows: at most two fragments per slide, `f2 = range %
    /// slide` and `f1 = slide − f2` (Fig. 2). The default, as in the
    /// paper's experiments.
    #[default]
    Pairs,
    /// Cutty-slicing: fragments start only at window starts, i.e. one
    /// fragment per slide for count-based queries (Fig. 3).
    Cutty,
}

impl Pat {
    /// The edge offsets this technique marks within one slide period of
    /// `query`, as positions in `(0, slide]` (ascending; always ends with
    /// `slide` itself — a fragment always closes at the slide boundary).
    pub fn edges_in_slide(&self, query: &Query) -> Vec<u64> {
        let s = query.slide;
        match self {
            Pat::Panes => {
                let g = gcd(query.range, s);
                (1..=s / g).map(|k| k * g).collect()
            }
            Pat::Pairs => {
                let f2 = query.range % s;
                if f2 == 0 {
                    vec![s]
                } else {
                    // Fragment boundary after f1 = s − f2 tuples, then the
                    // slide boundary itself.
                    vec![s - f2, s]
                }
            }
            Pat::Cutty => {
                // Fragments start only at window starts (Fig. 3): windows
                // end at k·s and start at k·s − r ≡ s − (r mod s) within
                // the slide, so exactly one cut per slide at that offset.
                // Report positions k·s are *not* cuts — Cutty reads the
                // running value mid-partial, which the shared plan models
                // as non-cutting punctuation edges.
                let rem = query.range % s;
                if rem == 0 {
                    vec![s]
                } else {
                    vec![s - rem]
                }
            }
        }
    }

    /// Number of fragments a single slide period is cut into.
    pub fn fragments_per_slide(&self, query: &Query) -> usize {
        self.edges_in_slide(query).len()
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Pat::Panes => "panes",
            Pat::Pairs => "pairs",
            Pat::Cutty => "cutty",
        }
    }
}

/// Greatest common divisor (Euclid).
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, panicking on overflow (plans of that size are
/// unrepresentable anyway).
pub fn lcm(a: u64, b: u64) -> u64 {
    let g = gcd(a, b);
    (a / g).checked_mul(b).expect("composite slide overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(2, 4), 4);
    }

    #[test]
    fn panes_cuts_at_gcd_multiples() {
        // Fig. 1 setting: range 6, slide 4 → pane size gcd(6,4)=2, edges
        // at 2 and 4 within each slide.
        let q = Query::new(6, 4);
        assert_eq!(Pat::Panes.edges_in_slide(&q), vec![2, 4]);
    }

    #[test]
    fn pairs_cuts_two_fragments_when_unaligned() {
        // Fig. 2: f2 = range % slide, f1 = slide − f2.
        let q = Query::new(6, 4);
        // f2 = 2, f1 = 2 → edges at 2 (end of f1) and 4 (end of f2).
        assert_eq!(Pat::Pairs.edges_in_slide(&q), vec![2, 4]);
        let q2 = Query::new(10, 4);
        // f2 = 2, f1 = 2.
        assert_eq!(Pat::Pairs.edges_in_slide(&q2), vec![2, 4]);
        let q3 = Query::new(7, 5);
        // f2 = 2, f1 = 3.
        assert_eq!(Pat::Pairs.edges_in_slide(&q3), vec![3, 5]);
    }

    #[test]
    fn pairs_single_fragment_when_aligned() {
        let q = Query::new(8, 4);
        assert_eq!(Pat::Pairs.edges_in_slide(&q), vec![4]);
        assert_eq!(Pat::Pairs.fragments_per_slide(&q), 1);
    }

    #[test]
    fn cutty_cuts_once_per_slide_at_window_starts() {
        // Aligned: the window start coincides with the slide boundary.
        assert_eq!(Pat::Cutty.edges_in_slide(&Query::new(8, 4)), vec![4]);
        // Unaligned: r=7, s=5 → windows start at k·5 − 7 ≡ 3 (mod 5).
        assert_eq!(Pat::Cutty.edges_in_slide(&Query::new(7, 5)), vec![3]);
        // r=6, s=4 → window starts at offset 2.
        assert_eq!(Pat::Cutty.edges_in_slide(&Query::new(6, 4)), vec![2]);
        for (r, s) in [(6, 4), (8, 4), (7, 5), (100, 3)] {
            let q = Query::new(r, s);
            assert_eq!(Pat::Cutty.fragments_per_slide(&q), 1);
        }
    }

    #[test]
    fn pairs_halves_panes_fragment_count() {
        // The paper: Pairs reduces the number of partials by up to 2×
        // relative to Panes when range is not divisible by slide.
        let q = Query::new(13, 5);
        let panes = Pat::Panes.fragments_per_slide(&q); // gcd 1 → 5 panes
        let pairs = Pat::Pairs.fragments_per_slide(&q); // 2 fragments
        assert_eq!(panes, 5);
        assert_eq!(pairs, 2);
    }

    #[test]
    fn per_tuple_slide_has_single_unit_edge() {
        let q = Query::per_tuple(1024);
        for pat in [Pat::Panes, Pat::Pairs, Pat::Cutty] {
            assert_eq!(pat.edges_in_slide(&q), vec![1]);
        }
    }
}
