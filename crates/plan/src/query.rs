//! The ACQ (Aggregate Continuous Query) model.
//!
//! Every ACQ is characterised by a *range* `r` (the window the statistic is
//! computed over) and a *slide* `s` (the period at which the answer is
//! updated), both either count-based (tuples) or time-based (paper §1).
//! Time-based specifications are converted to counts with the stream's
//! sample rate — the DEBS12 dataset is sampled at 100 Hz, so a "10 s range,
//! 1 s slide" query becomes `r = 1000, s = 100`.

use core::fmt;

/// A count-based ACQ: `range` and `slide` in tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Query {
    /// Window length in tuples (≥ 1).
    pub range: u64,
    /// Report period in tuples (≥ 1).
    pub slide: u64,
}

impl Query {
    /// Create a count-based query. Panics on a zero range or slide, or on a
    /// slide larger than the range (a sliding window by definition has
    /// `s ≤ r`; tumbling windows have `s = r`).
    pub fn new(range: u64, slide: u64) -> Self {
        assert!(range >= 1, "query range must be at least one tuple");
        assert!(slide >= 1, "query slide must be at least one tuple");
        assert!(
            slide <= range,
            "slide ({slide}) larger than range ({range}): tuples would be skipped"
        );
        Query { range, slide }
    }

    /// A tumbling window: `slide == range`.
    pub fn tumbling(range: u64) -> Self {
        Query::new(range, range)
    }

    /// A per-tuple sliding window: `slide == 1`, the configuration used
    /// throughout the paper's evaluation (§5.1 "setting all query slides to
    /// one tuple").
    pub fn per_tuple(range: u64) -> Self {
        Query::new(range, 1)
    }

    /// True if the range is a multiple of the slide (no Pairs fragments
    /// needed).
    pub fn aligned(&self) -> bool {
        self.range.is_multiple_of(self.slide)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ACQ[r={}, s={}]", self.range, self.slide)
    }
}

/// A time-based ACQ: range and slide in milliseconds, convertible to a
/// count-based [`Query`] given a sample rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeQuery {
    /// Window length in milliseconds.
    pub range_ms: u64,
    /// Report period in milliseconds.
    pub slide_ms: u64,
}

impl TimeQuery {
    /// Create a time-based query (validated like [`Query::new`]).
    pub fn new(range_ms: u64, slide_ms: u64) -> Self {
        assert!(
            range_ms >= 1 && slide_ms >= 1,
            "range/slide must be positive"
        );
        assert!(slide_ms <= range_ms, "slide larger than range");
        TimeQuery { range_ms, slide_ms }
    }

    /// Convert to a count-based query for a stream sampled at `hz` tuples
    /// per second. The range rounds up (a time window must cover every
    /// tuple inside it) and the slide rounds down but never below 1.
    pub fn to_count_based(&self, hz: u32) -> Query {
        let per_ms = hz as u64;
        let range = (self.range_ms * per_ms).div_ceil(1000).max(1);
        let slide = ((self.slide_ms * per_ms) / 1000).max(1);
        Query::new(range, slide.min(range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        let q = Query::new(10, 2);
        assert_eq!(q.range, 10);
        assert!(q.aligned());
        assert!(!Query::new(10, 3).aligned());
        assert_eq!(Query::tumbling(5).slide, 5);
        assert_eq!(Query::per_tuple(5).slide, 1);
    }

    #[test]
    #[should_panic(expected = "slide")]
    fn slide_exceeding_range_rejected() {
        Query::new(5, 6);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn zero_range_rejected() {
        Query::new(0, 1);
    }

    #[test]
    fn time_query_converts_at_100hz() {
        // 10 s range, 1 s slide at 100 Hz → 1000 tuples / 100 tuples.
        let q = TimeQuery::new(10_000, 1_000).to_count_based(100);
        assert_eq!(q, Query::new(1000, 100));
    }

    #[test]
    fn time_query_range_rounds_up() {
        // 15 ms at 100 Hz = 1.5 tuples → range 2, slide 1.
        let q = TimeQuery::new(15, 15).to_count_based(100);
        assert_eq!(q, Query::new(2, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Query::new(6, 2).to_string(), "ACQ[r=6, s=2]");
    }
}
