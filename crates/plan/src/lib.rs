//! # swag-plan — ACQ query model, partial aggregation, and shared plans
//!
//! The planning substrate of the SlickDeque reproduction (paper §2.1,
//! §2.3): count- and time-based query specifications ([`query`]), the
//! Panes / Pairs / Cutty partial-aggregation techniques ([`pat`]), and the
//! shared execution plan combining many ACQs over one stream ([`shared`]) —
//! the `buildSharedPlan` step both SlickDeque algorithms start from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pat;
pub mod query;
pub mod shared;

pub use pat::Pat;
pub use query::{Query, TimeQuery};
pub use shared::{PlanCursor, PlanEdge, SharedPlan};
