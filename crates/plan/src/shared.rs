//! Shared execution plans (paper §2.3 and the `buildSharedPlan` step of
//! Algorithms 1 and 2).
//!
//! Combining `n` ACQs into one plan: the *composite slide* is the LCM of
//! the query slides; every query marks, per the chosen [`Pat`], the
//! positions where the stream is **cut** into partial aggregates, plus the
//! positions where its answers are due. An edge is created at every such
//! position. Panes and Pairs cut at every edge they mark; Cutty cuts only
//! at window starts and reports mid-partial through non-cutting
//! *punctuation* edges (paper §2.1 — "additional punctuations have to be
//! sent over the data stream"), reading the running fragment value.
//!
//! A plan is *exact* when every query's window start falls on the cut
//! lattice — guaranteed by construction for all three techniques, and
//! verified at build time.

use crate::pat::{lcm, Pat};
use crate::query::Query;

/// One edge of the composite slide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEdge {
    /// Offset of this edge within the composite slide, in `(0, composite]`.
    pub position: u64,
    /// Tuples consumed since the previous edge.
    pub length: u64,
    /// Whether the running fragment is finalised into a partial here. A
    /// `false` value is a Cutty punctuation: due queries read the running
    /// fragment's current value.
    pub cuts: bool,
    /// Indices (into [`SharedPlan::queries`]) of the queries reporting at
    /// this edge, descending by range.
    pub queries: Vec<usize>,
}

/// A shared execution plan over a set of ACQs.
///
/// ```
/// use swag_plan::{Pat, Query, SharedPlan};
///
/// // The paper's Example 1: partials every 2 tuples serve both queries.
/// let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
/// assert_eq!(plan.composite_slide(), 4);
/// assert_eq!(plan.wsize(), 4);
/// assert_eq!(plan.uniform_query_ranges(), Some(vec![3, 4]));
/// ```
#[derive(Debug, Clone)]
pub struct SharedPlan {
    queries: Vec<Query>,
    pat: Pat,
    composite_slide: u64,
    edges: Vec<PlanEdge>,
    /// Cut positions within one composite slide (ascending subset of edge
    /// positions).
    cuts: Vec<u64>,
    wsize: usize,
}

impl SharedPlan {
    /// Build a shared plan for `queries` under the partial-aggregation
    /// technique `pat` (the paper's `buildSharedPlan(Q, PAT)`).
    ///
    /// Panics if `queries` is empty or if the resulting plan could not
    /// answer some query exactly (cannot happen for the built-in PATs).
    pub fn build(queries: &[Query], pat: Pat) -> Self {
        assert!(!queries.is_empty(), "a plan needs at least one query");
        let queries = queries.to_vec();
        let composite_slide = queries.iter().map(|q| q.slide).fold(1, lcm);

        // Cut positions: union of every query's PAT edges across the
        // composite slide.
        let mut cuts: Vec<u64> = Vec::new();
        for q in &queries {
            let in_slide = pat.edges_in_slide(q);
            for k in 0..composite_slide / q.slide {
                for &e in &in_slide {
                    cuts.push(k * q.slide + e);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        // Edge positions: cuts plus every query's report positions.
        let mut positions = cuts.clone();
        for q in &queries {
            for k in 1..=composite_slide / q.slide {
                positions.push(k * q.slide);
            }
        }
        positions.sort_unstable();
        positions.dedup();
        debug_assert_eq!(*positions.last().expect("nonempty"), composite_slide);

        let mut edges = Vec::with_capacity(positions.len());
        let mut prev = 0u64;
        for &position in &positions {
            let mut due: Vec<usize> = queries
                .iter()
                .enumerate()
                .filter(|(_, q)| position % q.slide == 0)
                .map(|(i, _)| i)
                .collect();
            due.sort_by(|&a, &b| queries[b].range.cmp(&queries[a].range));
            edges.push(PlanEdge {
                position,
                length: position - prev,
                cuts: cuts.binary_search(&position).is_ok(),
                queries: due,
            });
            prev = position;
        }

        let mut plan = SharedPlan {
            queries,
            pat,
            composite_slide,
            edges,
            cuts,
            wsize: 0,
        };
        plan.wsize = plan.compute_wsize();
        plan
    }

    /// Count lattice points (cut positions repeated every composite slide)
    /// in the half-open interval `(a, b]`.
    fn cuts_in(&self, a: i128, b: i128) -> i128 {
        let c = self.composite_slide as i128;
        self.cuts
            .iter()
            .map(|&x| {
                let x = x as i128;
                (b - x).div_euclid(c) - (a - x).div_euclid(c)
            })
            .sum()
    }

    /// True if `x > 0` lies on the cut lattice (cut positions extended
    /// periodically).
    fn on_cut_lattice(&self, x: i128) -> bool {
        debug_assert!(x > 0);
        self.cuts_in(x - 1, x) == 1
    }

    /// Latest lattice point ≤ `x` (for `x` far from the stream start).
    fn latest_cut_at_or_before(&self, x: i128) -> i128 {
        let c = self.composite_slide as i128;
        self.cuts
            .iter()
            .map(|&p| {
                let p = p as i128;
                p + (x - p).div_euclid(c) * c
            })
            .max()
            .expect("plans always have at least one cut")
    }

    /// Number of partials covering query `query_idx`'s window when it
    /// reports at edge `edge_idx`, in the steady state: full partials
    /// plus, at a non-cutting (punctuation) edge, the running fragment.
    ///
    /// Panics if the query does not report at that edge, or if its window
    /// start misses the cut lattice (the plan could not answer it exactly).
    pub fn partials_covering(&self, query_idx: usize, edge_idx: usize) -> usize {
        let edge = &self.edges[edge_idx];
        let q = &self.queries[query_idx];
        assert!(
            edge.position.is_multiple_of(q.slide),
            "query {query_idx} does not report at edge {edge_idx}"
        );
        let c = self.composite_slide as i128;
        let r = q.range as i128;
        // Shift the report position deep into the steady state so the
        // window never reaches back past the stream start.
        let p = edge.position as i128 + (r.div_euclid(c) + 1) * c;
        let start = p - r;
        debug_assert!(start > 0);
        assert!(
            self.on_cut_lattice(start),
            "window start of {q} misses the cut lattice: the plan cannot \
             answer it exactly"
        );
        let last_cut = if edge.cuts {
            p
        } else {
            self.latest_cut_at_or_before(p - 1)
        };
        let full = self.cuts_in(start, last_cut);
        let prefix = if edge.cuts { 0 } else { 1 };
        (full + prefix) as usize
    }

    fn compute_wsize(&self) -> usize {
        let mut w = 0;
        for (ei, edge) in self.edges.iter().enumerate() {
            for &qi in &edge.queries {
                w = w.max(self.partials_covering(qi, ei));
            }
        }
        w
    }

    /// If every query spans the same number of partials at each of its
    /// report edges, return that per-query count (`ranges[i]` in
    /// partials). This is the precondition for driving the constant-range
    /// multi-query aggregators; per-tuple slides always satisfy it.
    pub fn uniform_query_ranges(&self) -> Option<Vec<usize>> {
        let mut ranges = vec![None; self.queries.len()];
        for (ei, edge) in self.edges.iter().enumerate() {
            for &qi in &edge.queries {
                let c = self.partials_covering(qi, ei);
                match ranges[qi] {
                    None => ranges[qi] = Some(c),
                    Some(prev) if prev == c => {}
                    Some(_) => return None,
                }
            }
        }
        ranges.into_iter().collect()
    }

    /// True if every edge finalises a partial (no Cutty punctuations) —
    /// the precondition for the partials-only multi-query executors.
    pub fn all_edges_cut(&self) -> bool {
        self.edges.iter().all(|e| e.cuts)
    }

    /// The registered queries, in registration order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The partial-aggregation technique the plan was built with.
    pub fn pat(&self) -> Pat {
        self.pat
    }

    /// Length of the composite slide in tuples (the LCM of all slides).
    pub fn composite_slide(&self) -> u64 {
        self.composite_slide
    }

    /// The edges of one composite slide, ascending by position.
    pub fn edges(&self) -> &[PlanEdge] {
        &self.edges
    }

    /// Cut positions within one composite slide.
    pub fn cut_positions(&self) -> &[u64] {
        &self.cuts
    }

    /// The window length in partials needed to serve every query
    /// (Algorithms 1/2, `sharedPlan.wSize`).
    pub fn wsize(&self) -> usize {
        self.wsize
    }

    /// Cyclic iterator over the plan's edges (the execution loop's
    /// `getNextPartialLength` / `getNextSetOfQueries`).
    pub fn cursor(&self) -> PlanCursor<'_> {
        PlanCursor { plan: self, idx: 0 }
    }
}

/// Cyclic cursor over a plan's edges.
#[derive(Debug, Clone)]
pub struct PlanCursor<'a> {
    plan: &'a SharedPlan,
    idx: usize,
}

impl<'a> PlanCursor<'a> {
    /// The next edge (wrapping to the first after the last).
    pub fn next_edge(&mut self) -> &'a PlanEdge {
        let edge = &self.plan.edges[self.idx];
        self.idx = (self.idx + 1) % self.plan.edges.len();
        edge
    }

    /// Index of the edge `next_edge` will return next.
    pub fn position(&self) -> usize {
        self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Example 1 (Fig. 7): Q1 slide 2 / range 6, Q2 slide 4 /
    /// range 8 → composite slide 4 (LCM), partials every 2 tuples, Q1
    /// answered over the last 3 partials, Q2 over the last 4.
    #[test]
    fn paper_example_1_shared_plan() {
        let q1 = Query::new(6, 2);
        let q2 = Query::new(8, 4);
        let plan = SharedPlan::build(&[q1, q2], Pat::Pairs);
        assert_eq!(plan.composite_slide(), 4);
        let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
        assert_eq!(positions, vec![2, 4]);
        let lengths: Vec<u64> = plan.edges().iter().map(|e| e.length).collect();
        assert_eq!(lengths, vec![2, 2]);
        assert!(plan.all_edges_cut());
        // Q1 reports every 2 tuples, Q2 only at the composite boundary.
        assert_eq!(plan.edges()[0].queries, vec![0]);
        // At position 4 both report; Q2 (range 8) first.
        assert_eq!(plan.edges()[1].queries, vec![1, 0]);
        // Ranges in partials: 3 for Q1, 4 for Q2; wSize = 4.
        assert_eq!(plan.uniform_query_ranges(), Some(vec![3, 4]));
        assert_eq!(plan.wsize(), 4);
    }

    #[test]
    fn per_tuple_slides_degenerate_to_unit_edges() {
        let queries = [Query::per_tuple(5), Query::per_tuple(3)];
        let plan = SharedPlan::build(&queries, Pat::Pairs);
        assert_eq!(plan.composite_slide(), 1);
        assert_eq!(plan.edges().len(), 1);
        assert_eq!(plan.edges()[0].length, 1);
        assert_eq!(plan.edges()[0].queries, vec![0, 1]);
        assert_eq!(plan.uniform_query_ranges(), Some(vec![5, 3]));
        assert_eq!(plan.wsize(), 5);
    }

    #[test]
    fn pairs_fragments_appear_as_edges() {
        // Single query r=7, s=5: Pairs cuts f1=3, f2=2 → edges at 3 and 5,
        // both cutting; a 7-tuple window spans 3 partials.
        let plan = SharedPlan::build(&[Query::new(7, 5)], Pat::Pairs);
        let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
        assert_eq!(positions, vec![3, 5]);
        assert!(plan.all_edges_cut());
        assert_eq!(plan.uniform_query_ranges(), Some(vec![3]));
        assert_eq!(plan.wsize(), 3);
    }

    #[test]
    fn cutty_cuts_fewer_partials_than_pairs() {
        // r=7, s=5: Pairs produces 2 partials per slide; Cutty cuts once
        // per slide (at the window start) and reports through a
        // punctuation edge, so each window spans 2 partials (one full +
        // the running fragment) instead of 3.
        let q = Query::new(7, 5);
        let pairs = SharedPlan::build(&[q], Pat::Pairs);
        let cutty = SharedPlan::build(&[q], Pat::Cutty);
        assert_eq!(pairs.cut_positions().len(), 2);
        assert_eq!(cutty.cut_positions(), &[3]);
        assert!(!cutty.all_edges_cut());
        // Edges: the cut at 3 plus the punctuation at 5.
        let kinds: Vec<(u64, bool)> = cutty.edges().iter().map(|e| (e.position, e.cuts)).collect();
        assert_eq!(kinds, vec![(3, true), (5, false)]);
        assert_eq!(cutty.uniform_query_ranges(), Some(vec![2]));
        assert!(cutty.wsize() < pairs.wsize());
    }

    #[test]
    fn panes_cuts_gcd_fragments() {
        let plan = SharedPlan::build(&[Query::new(6, 4)], Pat::Panes);
        let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
        assert_eq!(positions, vec![2, 4]);
        assert!(plan.all_edges_cut());
        // Range 6 = 3 panes of 2.
        assert_eq!(plan.uniform_query_ranges(), Some(vec![3]));
    }

    #[test]
    fn heterogeneous_slides_mark_all_multiples() {
        let queries = [Query::new(6, 2), Query::new(9, 3)];
        let plan = SharedPlan::build(&queries, Pat::Cutty);
        assert_eq!(plan.composite_slide(), 6);
        let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
        assert_eq!(positions, vec![2, 3, 4, 6]);
        let lengths: Vec<u64> = plan.edges().iter().map(|e| e.length).collect();
        assert_eq!(lengths, vec![2, 1, 1, 2]);
        // Both queries aligned → every edge cuts.
        assert!(plan.all_edges_cut());
    }

    #[test]
    fn aligned_heterogeneous_plan_is_uniform() {
        let queries = [Query::new(6, 2), Query::new(9, 3)];
        let plan = SharedPlan::build(&queries, Pat::Cutty);
        assert_eq!(plan.uniform_query_ranges(), Some(vec![4, 6]));
        assert_eq!(plan.wsize(), 6);
    }

    #[test]
    fn unaligned_cutty_counts_running_fragment() {
        // Q1 (r=5, s=2) and Q2 (r=9, s=3) under Cutty: Q1 cuts at odd
        // positions, Q2 at multiples of 3; report edges at even positions
        // are punctuations for Q1.
        let queries = [Query::new(5, 2), Query::new(9, 3)];
        let plan = SharedPlan::build(&queries, Pat::Cutty);
        assert!(!plan.all_edges_cut());
        let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
        assert_eq!(positions, vec![1, 2, 3, 4, 5, 6]);
        // At p≡2 (punctuation for Q1), steady state: e.g. window (3, 8]
        // with cuts at {5, 6, 7} → three full partials (3,5], (5,6],
        // (6,7] plus the running fragment (7,8].
        let e_p2 = 1;
        assert_eq!(plan.partials_covering(0, e_p2), 4);
        // At p≡6 (cut, from Q2's lattice): window (7, 12] with cuts at
        // {9, 11, 12} → three full partials, no fragment.
        let e_p6 = 5;
        assert_eq!(plan.partials_covering(0, e_p6), 3);
        assert_eq!(plan.uniform_query_ranges(), None);
    }

    #[test]
    fn cursor_cycles_through_edges() {
        let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
        let mut cursor = plan.cursor();
        let a = cursor.next_edge().position;
        let b = cursor.next_edge().position;
        let c = cursor.next_edge().position;
        assert_eq!((a, b, c), (2, 4, 2));
    }

    #[test]
    fn wsize_counts_partials_not_tuples() {
        let plan = SharedPlan::build(&[Query::tumbling(100)], Pat::Pairs);
        assert_eq!(plan.wsize(), 1);
        assert_eq!(plan.edges()[0].length, 100);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_plan_rejected() {
        SharedPlan::build(&[], Pat::Pairs);
    }

    #[test]
    #[should_panic(expected = "does not report")]
    fn partials_covering_rejects_non_reporting_edge() {
        let plan = SharedPlan::build(&[Query::new(6, 2), Query::new(8, 4)], Pat::Pairs);
        // Q2 (slide 4) does not report at position 2 (edge 0).
        plan.partials_covering(1, 0);
    }
}
