//! Sampled tuple-lifecycle spans.
//!
//! A [`SpanSampler`] picks 1-in-N tuples at the ingest boundary and hands
//! each one a nonzero trace id. The id rides on the tuple through the
//! pipeline; every stage boundary it crosses records one
//! [`EventKind::SpanStage`] event into a shared [`FlightRecorder`] ring.
//! Consecutive stage timestamps for a trace id decompose the answer's
//! end-to-end latency into named spans:
//!
//! ```text
//! Ingest ──queue-wait──▶ Dequeue ──batching──▶ AggStart
//!        ──aggregation──▶ AggEnd ──emission──▶ Emit
//! ```
//!
//! The sampling fast path — [`SpanSampler::sample`] on every tuple, and
//! [`SpanSampler::stage`] only on the sampled ones — is alloc-, panic-
//! and blocking-free and is proved so by `swag-check`'s hot-path
//! analysis (HP01–HP03). Export to Chrome trace-event JSON lives in
//! [`chrome`](crate::chrome) and runs on the cold dump path only.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::recorder::{Event, EventKind, FlightRecorder};

/// A tuple-lifecycle stage boundary. The code is stored in the low byte
/// of the `SpanStage` event's `b` payload; bits 8.. carry a
/// stage-specific extra (frame sequence number for [`Stage::Ingest`],
/// cycle tuple count for [`Stage::AggStart`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Decoded off the wire; the trace id was just assigned.
    Ingest,
    /// The pipeline worker pulled the tuple's message off its queue.
    Dequeue,
    /// The worker's cycle stopped gathering messages and entered the
    /// engine run.
    AggStart,
    /// The engine run returned with fresh answers.
    AggEnd,
    /// The answer table was updated; the answer is observable.
    Emit,
}

impl Stage {
    /// Stable name used in dumps and trace exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Dequeue => "dequeue",
            Stage::AggStart => "agg_start",
            Stage::AggEnd => "agg_end",
            Stage::Emit => "emit",
        }
    }

    /// The stage code (low byte of the event's `b` payload).
    pub fn code(self) -> u64 {
        match self {
            Stage::Ingest => 0,
            Stage::Dequeue => 1,
            Stage::AggStart => 2,
            Stage::AggEnd => 3,
            Stage::Emit => 4,
        }
    }

    /// Decode a stage code; `None` for unknown codes (future formats).
    pub fn from_code(code: u64) -> Option<Stage> {
        match code {
            0 => Some(Stage::Ingest),
            1 => Some(Stage::Dequeue),
            2 => Some(Stage::AggStart),
            3 => Some(Stage::AggEnd),
            4 => Some(Stage::Emit),
            _ => None,
        }
    }

    /// The span *ending* at this stage boundary, if any: the name Chrome
    /// shows for the interval from the previous stage to this one.
    pub fn span_ending_here(self) -> Option<&'static str> {
        match self {
            Stage::Ingest => None,
            Stage::Dequeue => Some("queue-wait"),
            Stage::AggStart => Some("batching"),
            Stage::AggEnd => Some("aggregation"),
            Stage::Emit => Some("emission"),
        }
    }
}

/// A decoded `SpanStage` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// The trace id (nonzero).
    pub trace: u64,
    /// Which boundary was crossed.
    pub stage: Stage,
    /// Stage-specific extra payload (bits 8.. of `b`).
    pub extra: u64,
    /// Nanoseconds since the ring's epoch.
    pub ts_ns: u64,
    /// Process-wide sequence number of the underlying ring event.
    pub gseq: u64,
}

/// Decode the `SpanStage` events out of a ring snapshot, in ring order.
pub fn stage_events(events: &[Event]) -> Vec<StageEvent> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStage)
        .filter_map(|e| {
            Stage::from_code(e.b & 0xff).map(|stage| StageEvent {
                trace: e.a,
                stage,
                extra: e.b >> 8,
                ts_ns: e.ts_ns,
                gseq: e.gseq,
            })
        })
        .collect()
}

/// Samples 1-in-N tuples at an ingest boundary and records their stage
/// boundaries into a shared ring.
///
/// Cloning shares the counters and the ring, so every ingest connection
/// of a pipeline draws from one sample stream and one trace-id space.
/// The per-tuple cost when a tuple is *not* sampled is one `fetch_add`
/// and one branch; a sampled tuple additionally pays one ring record per
/// stage boundary (~5 relaxed stores each).
#[derive(Debug, Clone)]
pub struct SpanSampler {
    inner: std::sync::Arc<SamplerInner>,
}

#[derive(Debug)]
struct SamplerInner {
    /// Sample every `every`-th tuple; 0 disables sampling entirely.
    every: u64,
    /// Tuples seen so far (sampled or not).
    seen: AtomicU64,
    /// Trace ids handed out (ids are `1..`; 0 means "not sampled").
    issued: AtomicU64,
    ring: FlightRecorder,
}

impl SpanSampler {
    /// A sampler recording every `every`-th tuple into `ring`
    /// (`every == 0` disables sampling: [`sample`](Self::sample) always
    /// returns `None`).
    pub fn new(every: u64, ring: FlightRecorder) -> Self {
        SpanSampler {
            inner: std::sync::Arc::new(SamplerInner {
                every,
                seen: AtomicU64::new(0),
                issued: AtomicU64::new(0),
                ring,
            }),
        }
    }

    /// The sampling interval (0 = disabled).
    pub fn every(&self) -> u64 {
        self.inner.every
    }

    /// The ring stage events are recorded into.
    pub fn ring(&self) -> &FlightRecorder {
        &self.inner.ring
    }

    /// Count one tuple; returns a fresh nonzero trace id for every
    /// `every`-th one. Wait-free, no allocation.
    #[inline]
    pub fn sample(&self) -> Option<u64> {
        let inner = &*self.inner;
        if inner.every == 0 {
            return None;
        }
        let n = inner.seen.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(inner.every) {
            Some(inner.issued.fetch_add(1, Ordering::Relaxed) + 1)
        } else {
            None
        }
    }

    /// Count a whole block of `n` tuples with **two** atomic adds (one
    /// on the seen counter, one reserving every hit's trace id) and
    /// iterate only the sampled offsets. This is the batch fast path:
    /// where [`sample`](Self::sample) pays a `fetch_add` per tuple, a
    /// block draw amortises to constant cost per frame plus pure local
    /// arithmetic per hit, which is what keeps default-on sampling
    /// inside the ingest loop's overhead budget.
    ///
    /// Yields `(offset, trace_id)` pairs, offsets ascending in
    /// `0..n`. Sampling decisions and id assignment are shared with
    /// [`sample`](Self::sample) (same counters), so the two can be
    /// mixed. Wait-free, no allocation.
    #[inline]
    pub fn sample_block(&self, n: u64) -> SampleBlock {
        let inner = &*self.inner;
        if inner.every == 0 || n == 0 {
            return SampleBlock {
                every: 1,
                next: 0,
                end: 0,
                next_id: 0,
            };
        }
        let first = inner.seen.fetch_add(n, Ordering::Relaxed);
        // Smallest offset k in 0..n with (first + k) divisible by the
        // interval — the block's first hit, if it has one.
        let rem = first % inner.every;
        let start = if rem == 0 { 0 } else { inner.every - rem };
        // Reserve every hit's id up front so iteration touches no shared
        // counter at all — the whole draw is two atomic adds total.
        let hits = if start >= n {
            0
        } else {
            (n - start - 1) / inner.every + 1
        };
        let next_id = if hits == 0 {
            0
        } else {
            inner.issued.fetch_add(hits, Ordering::Relaxed) + 1
        };
        SampleBlock {
            every: inner.every,
            next: start,
            end: n,
            next_id,
        }
    }

    /// Record that trace `id` crossed `stage`, with a stage-specific
    /// `extra` payload (stored in bits 8.. of the event). Wait-free, no
    /// allocation — safe on the ingest and worker hot paths.
    #[inline]
    pub fn stage(&self, id: u64, stage: Stage, extra: u64) {
        self.inner
            .ring
            .record(EventKind::SpanStage, id, stage.code() | (extra << 8));
    }

    /// Like [`stage`](Self::stage) but with a caller-supplied timestamp
    /// (from `self.ring().now_ns()`), skipping the per-event clock read.
    /// The ingest path stamps every sampled tuple of a frame with one
    /// shared reading: the tuples genuinely arrived together, and the
    /// saved clock reads keep default-on sampling within the ingest
    /// loop's overhead budget.
    #[inline]
    pub fn stage_at(&self, ts_ns: u64, id: u64, stage: Stage, extra: u64) {
        self.inner
            .ring
            .record_at(ts_ns, EventKind::SpanStage, id, stage.code() | (extra << 8));
    }
}

/// Iterator over the sampled offsets of one
/// [`SpanSampler::sample_block`] draw: `(offset, trace_id)` pairs.
/// All the draw's trace ids were reserved when the block was taken, so
/// iteration is pure local arithmetic.
#[derive(Debug)]
pub struct SampleBlock {
    every: u64,
    next: u64,
    end: u64,
    next_id: u64,
}

impl Iterator for SampleBlock {
    type Item = (usize, u64);

    #[inline]
    fn next(&mut self) -> Option<(usize, u64)> {
        if self.next >= self.end {
            return None;
        }
        let offset = self.next;
        self.next += self.every;
        let id = self.next_id;
        self.next_id += 1;
        Some((offset as usize, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_round_trip() {
        for stage in [
            Stage::Ingest,
            Stage::Dequeue,
            Stage::AggStart,
            Stage::AggEnd,
            Stage::Emit,
        ] {
            assert_eq!(Stage::from_code(stage.code()), Some(stage));
        }
        assert_eq!(Stage::from_code(99), None);
    }

    #[test]
    fn one_in_n_sampling_issues_sequential_ids() {
        let sampler = SpanSampler::new(4, FlightRecorder::new(16));
        let mut ids = Vec::new();
        for _ in 0..12 {
            if let Some(id) = sampler.sample() {
                ids.push(id);
            }
        }
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn zero_interval_disables_sampling() {
        let sampler = SpanSampler::new(0, FlightRecorder::new(4));
        assert!((0..100).all(|_| sampler.sample().is_none()));
    }

    #[test]
    fn stage_events_decode_with_extras() {
        let sampler = SpanSampler::new(1, FlightRecorder::new(16));
        let id = sampler.sample().unwrap();
        sampler.stage(id, Stage::Ingest, 7); // frame 7
        sampler.stage(id, Stage::Dequeue, 0);
        sampler.stage(id, Stage::AggStart, 32); // 32-tuple cycle
        sampler.stage(id, Stage::AggEnd, 0);
        sampler.stage(id, Stage::Emit, 0);
        let stages = stage_events(&sampler.ring().snapshot());
        assert_eq!(stages.len(), 5);
        assert_eq!(stages[0].stage, Stage::Ingest);
        assert_eq!(stages[0].extra, 7);
        assert_eq!(stages[2].extra, 32);
        assert!(stages.iter().all(|s| s.trace == id));
        assert!(stages.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn block_sampling_matches_scalar_sampling() {
        // Same decisions and ids as per-tuple sample() over 1000 tuples,
        // regardless of how the stream is chopped into blocks.
        let scalar = SpanSampler::new(7, FlightRecorder::new(16));
        let expected: Vec<(usize, u64)> = (0..1000)
            .filter_map(|i| scalar.sample().map(|id| (i, id)))
            .collect();
        let blocked = SpanSampler::new(7, FlightRecorder::new(16));
        let mut got = Vec::new();
        let mut base = 0usize;
        for n in [1usize, 3, 64, 7, 500, 425] {
            for (off, id) in blocked.sample_block(n as u64) {
                got.push((base + off, id));
            }
            base += n;
        }
        assert_eq!(base, 1000);
        assert_eq!(got, expected);
    }

    #[test]
    fn block_sampling_disabled_and_empty_blocks_yield_nothing() {
        let off = SpanSampler::new(0, FlightRecorder::new(4));
        assert_eq!(off.sample_block(100).count(), 0);
        let on = SpanSampler::new(4, FlightRecorder::new(4));
        assert_eq!(on.sample_block(0).count(), 0);
    }

    #[test]
    fn clones_share_the_sample_stream() {
        let a = SpanSampler::new(2, FlightRecorder::new(4));
        let b = a.clone();
        // Alternating across the clones: exactly every 2nd tuple sampled.
        let hits: Vec<bool> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    a.sample().is_some()
                } else {
                    b.sample().is_some()
                }
            })
            .collect();
        assert_eq!(hits.iter().filter(|h| **h).count(), 4);
    }
}
