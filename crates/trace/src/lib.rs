//! # swag-trace — a lock-free flight recorder for the engine's hot paths
//!
//! The paper's headline claims are about *worst-case* per-tuple cost, and
//! worst cases are exactly what an end-of-run report cannot show. This
//! crate keeps a fixed-capacity ring of timestamped events per shard — a
//! flight recorder — written with a handful of relaxed atomic operations
//! per event and no allocation, so it can stay on in production. When a
//! shard drains gracefully it dumps its last events to
//! `results/flightrec-<shard>.json`; when a shard worker *panics*, a
//! panic-hook integration ([`hook`]) dumps the same ring, so a crashed or
//! stalled shard leaves a post-mortem trail explaining what it was doing.
//!
//! ```
//! use swag_trace::{EventKind, FlightRecorder, trace_event};
//!
//! let rec = Some(FlightRecorder::new(128));
//! trace_event!(rec, EventKind::BatchReceived, 256, 0);
//! trace_event!(rec, EventKind::Slide, 7, 256); // key 7, 256 tuples
//! let events = rec.as_ref().unwrap().snapshot();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[1].kind, EventKind::Slide);
//! ```
//!
//! This crate and `swag-metrics` are the workspace's only sanctioned
//! monotonic-clock facades: `swag-check`'s no-clock lint fails direct
//! `Instant::now` use in the engine and driver crates, so every timestamp
//! is attributable to an instrument.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod hook;
pub mod recorder;
pub mod span;

pub use recorder::{merge_events, Event, EventKind, FlightRecorder};
pub use span::{SampleBlock, SpanSampler, Stage};

/// Record an event on an `Option<FlightRecorder>` without allocating.
///
/// Expands to a single `if let Some` around [`FlightRecorder::record`]:
/// when the recorder is `None` (tracing disabled) the cost is one branch.
/// The one- and two-payload forms default the missing payloads to 0.
#[macro_export]
macro_rules! trace_event {
    ($rec:expr, $kind:expr) => {
        $crate::trace_event!($rec, $kind, 0u64, 0u64)
    };
    ($rec:expr, $kind:expr, $a:expr) => {
        $crate::trace_event!($rec, $kind, $a, 0u64)
    };
    ($rec:expr, $kind:expr, $a:expr, $b:expr) => {
        if let Some(__rec) = ($rec).as_ref() {
            __rec.record($kind, $a as u64, $b as u64);
        }
    };
}
