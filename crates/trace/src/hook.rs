//! Panic-hook integration: a crashing shard dumps its own flight
//! recorder.
//!
//! A worker thread registers its recorder (and dump directory) in a
//! thread-local before entering its processing loop and holds the
//! returned [`TraceGuard`] for the loop's lifetime. The process-wide
//! panic hook — installed once, chaining whatever hook was set before —
//! checks that thread-local: if the panicking thread is a registered
//! shard worker, the hook appends a [`EventKind::Panic`] event and writes
//! `flightrec-<shard>.json`, so the post-mortem trail survives the
//! unwind. Threads that never registered (tests, the router, unrelated
//! panics) pass straight through to the previous hook.

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Once;

use crate::recorder::{EventKind, FlightRecorder};

struct Registration {
    shard: usize,
    recorder: FlightRecorder,
    dump_dir: Option<PathBuf>,
}

thread_local! {
    static CURRENT: RefCell<Option<Registration>> = const { RefCell::new(None) };
}

static INSTALL: Once = Once::new();

/// Install the process-wide dumping panic hook (idempotent; the previous
/// hook keeps running after ours). Called automatically by
/// [`register_shard`]; exposed for embedders that install hooks eagerly
/// at startup.
pub fn install_panic_hook() {
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_current_thread();
            previous(info);
        }));
    });
}

fn dump_current_thread() {
    // `try_with` / `try_borrow`: the hook must never itself panic (that
    // would abort), and the thread-local may already be torn down.
    let _ = CURRENT.try_with(|cell| {
        if let Ok(current) = cell.try_borrow() {
            if let Some(reg) = current.as_ref() {
                reg.recorder.record(EventKind::Panic, 0, 0);
                if let Some(dir) = &reg.dump_dir {
                    if let Err(e) = reg.recorder.dump_to_dir(reg.shard, dir) {
                        eprintln!(
                            "swag-trace: shard {} post-mortem dump failed: {e}",
                            reg.shard
                        );
                    } else {
                        eprintln!(
                            "swag-trace: shard {} post-mortem written to {}",
                            reg.shard,
                            dir.join(format!("flightrec-{}.json", reg.shard)).display()
                        );
                    }
                }
            }
        }
    });
}

/// Clears the thread's registration when the worker's processing scope
/// ends (normally or by unwind — dropping during unwind is fine because
/// the hook already ran at panic time, before unwinding began).
pub struct TraceGuard {
    _private: (),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let _ = CURRENT.try_with(|cell| {
            if let Ok(mut current) = cell.try_borrow_mut() {
                *current = None;
            }
        });
    }
}

/// Register the calling thread as shard `shard` with the given recorder,
/// installing the panic hook if needed. While the returned guard lives, a
/// panic on this thread dumps the recorder to `dump_dir` (when set).
pub fn register_shard(
    shard: usize,
    recorder: FlightRecorder,
    dump_dir: Option<PathBuf>,
) -> TraceGuard {
    install_panic_hook();
    CURRENT.with(|cell| {
        *cell.borrow_mut() = Some(Registration {
            shard,
            recorder,
            dump_dir,
        });
    });
    TraceGuard { _private: () }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_metrics::json::Json;

    #[test]
    fn panic_in_registered_thread_dumps_the_ring() {
        let dir = std::env::temp_dir().join(format!("swag-trace-hook-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let recorder = FlightRecorder::new(8);
        let rec = recorder.clone();
        let dump_dir = dir.clone();
        let handle = std::thread::spawn(move || {
            let _guard = register_shard(5, rec.clone(), Some(dump_dir));
            rec.record(EventKind::BatchReceived, 64, 1);
            rec.record(EventKind::Slide, 3, 64);
            panic!("injected worker crash");
        });
        assert!(handle.join().is_err(), "worker must have panicked");

        let path = dir.join("flightrec-5.json");
        let text = std::fs::read_to_string(&path).expect("post-mortem dump exists");
        let doc = Json::parse(&text).expect("dump parses");
        let events = doc.get("events").and_then(Json::as_array).unwrap();
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("kind").and_then(Json::as_str))
            .collect();
        assert_eq!(kinds, vec!["batch_received", "slide", "panic"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unregistered_threads_panic_without_dumping() {
        install_panic_hook();
        let handle = std::thread::spawn(|| {
            panic!("plain panic, no registration");
        });
        assert!(handle.join().is_err());
    }

    #[test]
    fn guard_drop_clears_registration() {
        let recorder = FlightRecorder::new(4);
        {
            let _guard = register_shard(1, recorder.clone(), None);
            CURRENT.with(|cell| assert!(cell.borrow().is_some()));
        }
        CURRENT.with(|cell| assert!(cell.borrow().is_none()));
    }
}
