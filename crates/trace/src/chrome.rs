//! Chrome trace-event export for sampled tuple-lifecycle spans.
//!
//! Converts the `SpanStage` events in a ring snapshot into the Chrome
//! trace-event JSON format (the `chrome://tracing` / Perfetto "JSON
//! Array Format"): one complete (`"ph": "X"`) event per lifecycle span,
//! one virtual thread per sampled tuple, so loading
//! `results/trace-<pipeline>.json` shows every sampled answer as a row
//! decomposing into `queue-wait` / `batching` / `aggregation` /
//! `emission` bars. This is a cold export path — it allocates freely and
//! runs only on dump, never per tuple.
//!
//! Schema (documented in DESIGN.md §15): `ts`/`dur` are fractional
//! microseconds since the ring's epoch; `pid` 0 is the pipeline
//! (named via a `process_name` metadata event); `tid` is the trace id;
//! `args` carry the pipeline name, trace id, and the ingest frame
//! sequence number the tuple arrived in.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use swag_metrics::json::Json;

use crate::recorder::Event;
use crate::span::{stage_events, Stage, StageEvent};

/// One reconstructed per-tuple lifecycle: the trace id, the frame it
/// arrived in, and the boundary events seen for it (stage order).
#[derive(Debug, Clone)]
pub struct TupleTrace {
    /// The trace id ([`SpanSampler`](crate::span::SpanSampler)-issued).
    pub trace: u64,
    /// Ingest frame sequence number (extra payload of the Ingest stage).
    pub frame: u64,
    /// Stage boundaries observed, sorted by stage code.
    pub stages: Vec<StageEvent>,
}

impl TupleTrace {
    /// True when every stage from Ingest through Emit survived in the
    /// ring, i.e. the tuple decomposes into all four named spans.
    pub fn is_complete(&self) -> bool {
        self.stages.len() == 5
            && self
                .stages
                .iter()
                .enumerate()
                .all(|(i, s)| s.stage.code() == i as u64)
    }
}

/// Group a snapshot's `SpanStage` events into per-tuple traces, ordered
/// by trace id. Duplicate stages for an id (ring wrap artifacts) keep
/// the earliest occurrence.
pub fn tuple_traces(events: &[Event]) -> Vec<TupleTrace> {
    let mut by_trace: BTreeMap<u64, Vec<StageEvent>> = BTreeMap::new();
    for se in stage_events(events) {
        let entry = by_trace.entry(se.trace).or_default();
        if !entry.iter().any(|e| e.stage == se.stage) {
            entry.push(se);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace, mut stages)| {
            stages.sort_by_key(|s| s.stage.code());
            let frame = stages
                .iter()
                .find(|s| s.stage == Stage::Ingest)
                .map(|s| s.extra)
                .unwrap_or(0);
            TupleTrace {
                trace,
                frame,
                stages,
            }
        })
        .collect()
}

fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1000.0)
}

/// Build the Chrome trace-event document for a pipeline's span ring
/// snapshot. Loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace(pipeline: &str, events: &[Event]) -> Json {
    let traces = tuple_traces(events);
    let mut trace_events: Vec<Json> = Vec::new();
    trace_events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(0)),
        (
            "args",
            Json::obj(vec![("name", Json::str(format!("pipeline {pipeline}")))]),
        ),
    ]));
    for t in &traces {
        trace_events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(0)),
            ("tid", Json::UInt(t.trace)),
            (
                "args",
                Json::obj(vec![(
                    "name",
                    Json::str(format!("tuple {} (frame {})", t.trace, t.frame)),
                )]),
            ),
        ]));
        for pair in t.stages.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            // Exactly-adjacent stages get the canonical span name; a gap
            // (stage lost to ring wrap) is labelled by its endpoints so
            // it is visibly not a clean measurement.
            let name = if to.stage.code() == from.stage.code() + 1 {
                to.stage.span_ending_here().unwrap_or("span").to_string()
            } else {
                format!("{}..{}", from.stage.as_str(), to.stage.as_str())
            };
            let dur_ns = to.ts_ns.saturating_sub(from.ts_ns);
            trace_events.push(Json::obj(vec![
                ("name", Json::str(name)),
                ("cat", Json::str("lifecycle")),
                ("ph", Json::str("X")),
                ("ts", us(from.ts_ns)),
                ("dur", us(dur_ns)),
                ("pid", Json::UInt(0)),
                ("tid", Json::UInt(t.trace)),
                (
                    "args",
                    Json::obj(vec![
                        ("pipeline", Json::str(pipeline)),
                        ("trace", Json::UInt(t.trace)),
                        ("frame", Json::UInt(t.frame)),
                        ("dur_ns", Json::UInt(dur_ns)),
                    ]),
                ),
            ]));
        }
    }
    let complete = traces.iter().filter(|t| t.is_complete()).count();
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj(vec![
                ("pipeline", Json::str(pipeline)),
                ("traces", Json::UInt(traces.len() as u64)),
                ("complete_traces", Json::UInt(complete as u64)),
            ]),
        ),
    ])
}

/// Write `dir/trace-<pipeline>.json`, creating `dir` if needed. Returns
/// the path written.
pub fn write_chrome_trace(
    dir: &Path,
    pipeline: &str,
    events: &[Event],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("trace-{pipeline}.json"));
    std::fs::write(&path, chrome_trace(pipeline, events).pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use crate::span::SpanSampler;

    fn record_full_trace(sampler: &SpanSampler, frame: u64) -> u64 {
        let id = sampler.sample().expect("every=1 always samples");
        sampler.stage(id, Stage::Ingest, frame);
        sampler.stage(id, Stage::Dequeue, 0);
        sampler.stage(id, Stage::AggStart, 8);
        sampler.stage(id, Stage::AggEnd, 0);
        sampler.stage(id, Stage::Emit, 0);
        id
    }

    #[test]
    fn complete_trace_decomposes_into_the_four_spans() {
        let sampler = SpanSampler::new(1, FlightRecorder::new(64));
        let id = record_full_trace(&sampler, 3);
        let traces = tuple_traces(&sampler.ring().snapshot());
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].trace, id);
        assert_eq!(traces[0].frame, 3);
        assert!(traces[0].is_complete());

        let doc = chrome_trace("bids", &sampler.ring().snapshot());
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("chrome trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let span_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(
            span_names,
            vec!["queue-wait", "batching", "aggregation", "emission"]
        );
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("complete_traces"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn gap_from_ring_wrap_is_labelled_not_misnamed() {
        let sampler = SpanSampler::new(1, FlightRecorder::new(64));
        let id = sampler.sample().unwrap();
        sampler.stage(id, Stage::Ingest, 0);
        // Dequeue lost (simulated ring wrap): skip straight to AggStart.
        sampler.stage(id, Stage::AggStart, 0);
        sampler.stage(id, Stage::AggEnd, 0);
        let doc = chrome_trace("p", &sampler.ring().snapshot());
        let text = doc.pretty();
        assert!(text.contains("ingest..agg_start"));
        assert!(text.contains("aggregation"));
        assert!(!text.contains("queue-wait"));
    }

    #[test]
    fn spans_nonnegative_and_microsecond_scaled() {
        let sampler = SpanSampler::new(1, FlightRecorder::new(64));
        record_full_trace(&sampler, 0);
        record_full_trace(&sampler, 1);
        let doc = chrome_trace("p", &sampler.ring().snapshot());
        let parsed = Json::parse(&doc.pretty()).unwrap();
        for e in parsed.get("traceEvents").and_then(Json::as_array).unwrap() {
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                let dur = e.get("dur").and_then(Json::as_f64).unwrap();
                assert!(dur >= 0.0);
                let dur_ns = e
                    .get("args")
                    .and_then(|a| a.get("dur_ns"))
                    .and_then(Json::as_u64)
                    .unwrap() as f64;
                assert!((dur - dur_ns / 1000.0).abs() < 1e-9);
            }
        }
    }
}
