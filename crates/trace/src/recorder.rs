//! The flight recorder: a fixed-capacity, lock-free ring of events.
//!
//! One recorder is owned per shard worker. The writer is wait-free: one
//! `fetch_add` claims a slot, a per-slot sequence number brackets the
//! field stores (a seqlock), and readers taking a [`snapshot`] discard any
//! slot they observed mid-write. Everything is plain atomics — no locks,
//! no `unsafe`, no allocation after construction — so recording is safe
//! from any thread, including from inside a panic hook.
//!
//! [`snapshot`]: FlightRecorder::snapshot

use std::fmt;
use std::path::Path;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use swag_metrics::clock::Stopwatch;
use swag_metrics::json::{Json, ToJson};

/// Process-wide event sequence. Every [`FlightRecorder::record`] claims
/// one value, so events from *different* rings (shards, the router, the
/// ingest threads) carry a total order and multi-shard post-mortems merge
/// deterministically — per-ring `seq` alone cannot order dumps against
/// each other. See [`merge_events`].
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// What happened. Payload meanings (`a`, `b`) per kind are part of the
/// dump schema documented in DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tuple batch arrived off the channel. `a` = batch length,
    /// `b` = queue depth after the receive.
    BatchReceived,
    /// A per-key run slid its window(s). `a` = key, `b` = run length.
    Slide,
    /// A bulk eviction inside an aggregator fast path. `a` = evicted
    /// count, `b` = context-dependent (executor: edge index).
    BulkEvict,
    /// Graceful end-of-stream drain completed. `a` = tuples processed,
    /// `b` = answers produced.
    Drain,
    /// An invariant check ran. `a` = 0 pass / 1 fail.
    InvariantCheck,
    /// The thread is panicking; recorded by the panic hook just before
    /// the post-mortem dump.
    Panic,
    /// Free-form instrumentation points.
    Custom,
    /// A tuple arrived below the watermark and was dropped. `a` = the
    /// tuple's event timestamp, `b` = the watermark it fell below.
    LateDrop,
    /// The watermark advanced. `a` = new watermark, `b` = answers
    /// emitted by the advance.
    WatermarkAdvance,
    /// A sampled tuple crossed a lifecycle stage boundary. `a` = trace
    /// id (nonzero), `b` = stage code in the low byte (see
    /// [`Stage`](crate::span::Stage)) with a stage-specific payload in
    /// the high bits.
    SpanStage,
    /// A pipeline SLO objective was breached. `a` = objective code,
    /// `b` = the observed value that broke the target.
    SloBreach,
}

impl EventKind {
    /// Stable name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::BatchReceived => "batch_received",
            EventKind::Slide => "slide",
            EventKind::BulkEvict => "bulk_evict",
            EventKind::Drain => "drain",
            EventKind::InvariantCheck => "invariant_check",
            EventKind::Panic => "panic",
            EventKind::Custom => "custom",
            EventKind::LateDrop => "late_drop",
            EventKind::WatermarkAdvance => "watermark_advance",
            EventKind::SpanStage => "span_stage",
            EventKind::SloBreach => "slo_breach",
        }
    }

    fn to_u64(self) -> u64 {
        match self {
            EventKind::BatchReceived => 0,
            EventKind::Slide => 1,
            EventKind::BulkEvict => 2,
            EventKind::Drain => 3,
            EventKind::InvariantCheck => 4,
            EventKind::Panic => 5,
            EventKind::Custom => 6,
            EventKind::LateDrop => 7,
            EventKind::WatermarkAdvance => 8,
            EventKind::SpanStage => 9,
            EventKind::SloBreach => 10,
        }
    }

    fn from_u64(v: u64) -> EventKind {
        match v {
            0 => EventKind::BatchReceived,
            1 => EventKind::Slide,
            2 => EventKind::BulkEvict,
            3 => EventKind::Drain,
            4 => EventKind::InvariantCheck,
            5 => EventKind::Panic,
            7 => EventKind::LateDrop,
            8 => EventKind::WatermarkAdvance,
            9 => EventKind::SpanStage,
            10 => EventKind::SloBreach,
            _ => EventKind::Custom,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event, as read back by [`FlightRecorder::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// 0-based position in the recorder's whole event stream (older
    /// events with smaller `seq` may have been overwritten).
    pub seq: u64,
    /// Process-wide monotonic sequence number, unique across *all*
    /// recorders in this process; merging multi-ring dumps by `gseq`
    /// yields a deterministic total order.
    pub gseq: u64,
    /// Nanoseconds since the recorder's epoch (monotonic; the epoch
    /// defaults to construction time, see [`FlightRecorder::with_clock`]).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload (meaning depends on `kind`).
    pub a: u64,
    /// Second payload.
    pub b: u64,
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::UInt(self.seq)),
            ("gseq", Json::UInt(self.gseq)),
            ("ts_ns", Json::UInt(self.ts_ns)),
            ("kind", Json::str(self.kind.as_str())),
            ("a", Json::UInt(self.a)),
            ("b", Json::UInt(self.b)),
        ])
    }
}

/// One ring slot: a seqlock sequence word bracketing four payload words.
///
/// `seq` protocol for the i-th event (0-based): the writer stores
/// `2*i + 1` (odd = write in progress), the payload fields, then
/// `2*i + 2` (even = slot holds event i, complete). A reader that sees
/// an odd value, zero, or a value that changed across its field reads
/// discards the slot.
#[derive(Debug, Default)]
struct Slot {
    seq: AtomicU64,
    gseq: AtomicU64,
    ts_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

#[derive(Debug)]
struct RecorderInner {
    /// Next event index; `fetch_add` claims slots, so the writer side is
    /// wait-free and multiple writers are safe (each owns a distinct
    /// index; colliding ring slots resolve by seq, newest wins).
    head: AtomicU64,
    slots: Box<[Slot]>,
    epoch: Stopwatch,
}

/// A fixed-capacity, lock-free ring buffer of timestamped events.
///
/// Cloning shares the ring (`Arc` inside): the shard worker records while
/// the panic hook or a dump path reads. Recording never blocks and never
/// allocates; the ring keeps the most recent `capacity` events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` events (rounded up to 1).
    /// The timestamp epoch is the moment of construction.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, Stopwatch::start())
    }

    /// A recorder whose `ts_ns` values count from `clock`'s start rather
    /// than construction time. Rings sharing one [`Stopwatch`] (e.g. every
    /// ring in a server process) produce directly comparable timestamps,
    /// which the span exporter relies on to align stage events with
    /// ingest timestamps stamped from the same clock.
    pub fn with_clock(capacity: usize, clock: Stopwatch) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Slot::default()).collect();
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                head: AtomicU64::new(0),
                slots,
                epoch: clock,
            }),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total events recorded since construction (including overwritten
    /// ones).
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder's epoch, right now — exactly the
    /// timestamp [`record`](Self::record) would stamp. Take one reading
    /// and share it across several [`record_at`](Self::record_at) calls
    /// to amortise the clock read over a batch of events.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed_ns()
    }

    /// Record one event. Wait-free: two `fetch_add`s, one clock read,
    /// six relaxed stores, two fences; no allocation.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        self.record_at(self.now_ns(), kind, a, b);
    }

    /// Record one event with a caller-supplied timestamp (from
    /// [`now_ns`](Self::now_ns)), skipping the per-event clock read.
    /// Batch producers that stamp many events at one instant — e.g. the
    /// ingest path marking every sampled tuple of a frame — use this to
    /// keep the per-event cost to the two `fetch_add`s and the stores.
    /// Timestamps still sort consistently with `gseq` as long as callers
    /// don't reorder readings across record calls on one thread.
    #[inline]
    pub fn record_at(&self, ts: u64, kind: EventKind, a: u64, b: u64) {
        let inner = &*self.inner;
        let i = inner.head.fetch_add(1, Ordering::Relaxed);
        let g = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
        let slot = &inner.slots[(i % inner.slots.len() as u64) as usize];
        // Seqlock write protocol: odd = in progress, even = event i done.
        // The Release fences order the payload stores between the two seq
        // stores for any reader that observes them with Acquire fences;
        // all fields are atomics, so a torn *logical* event is detected
        // (seq mismatch) rather than undefined behaviour.
        slot.seq.store(i * 2 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.gseq.store(g, Ordering::Relaxed);
        slot.ts_ns.store(ts, Ordering::Relaxed);
        slot.kind.store(kind.to_u64(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.seq.store(i * 2 + 2, Ordering::Relaxed);
    }

    /// Read the current ring contents, oldest first. Slots observed
    /// mid-write are skipped, so a snapshot taken while the writer runs
    /// is a consistent (possibly slightly shorter) view.
    pub fn snapshot(&self) -> Vec<Event> {
        let inner = &*self.inner;
        let mut events = Vec::with_capacity(inner.slots.len());
        for slot in inner.slots.iter() {
            let s1 = slot.seq.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in progress
            }
            let gseq = slot.gseq.load(Ordering::Relaxed);
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // overwritten while reading
            }
            events.push(Event {
                seq: s1 / 2 - 1,
                gseq,
                ts_ns,
                kind: EventKind::from_u64(kind),
                a,
                b,
            });
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The dump document: recorder metadata plus the surviving events,
    /// oldest first.
    pub fn dump_json(&self, shard: usize) -> Json {
        let events = self.snapshot();
        let recorded = self.recorded();
        Json::obj(vec![
            ("shard", Json::UInt(shard as u64)),
            ("capacity", Json::UInt(self.capacity() as u64)),
            ("recorded", Json::UInt(recorded)),
            (
                "overwritten",
                Json::UInt(recorded.saturating_sub(events.len() as u64)),
            ),
            ("events", Json::arr(events.iter(), |e| e.to_json())),
        ])
    }

    /// Write the dump to `dir/flightrec-<shard>.json`, creating `dir` if
    /// needed. Returns the path written.
    pub fn dump_to_dir(&self, shard: usize, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flightrec-{shard}.json"));
        std::fs::write(&path, self.dump_json(shard).pretty())?;
        Ok(path)
    }
}

/// Merge snapshots from several recorders into one stream, totally
/// ordered by the process-wide `gseq`. Per-ring `seq` values restart at
/// zero in every ring, so they cannot order a shard-0 dump against a
/// shard-1 dump; `gseq` is claimed from one process-global counter and
/// can. The result is deterministic for any set of snapshots.
pub fn merge_events(snapshots: &[Vec<Event>]) -> Vec<Event> {
    let mut all: Vec<Event> = snapshots.iter().flatten().copied().collect();
    all.sort_by_key(|e| e.gseq);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::BatchReceived, 32, 2);
        rec.record(EventKind::Slide, 7, 32);
        rec.record(EventKind::Drain, 32, 32);
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::BatchReceived);
        assert_eq!(events[0].a, 32);
        assert_eq!(events[0].b, 2);
        assert_eq!(events[2].kind, EventKind::Drain);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(EventKind::Custom, i, 0);
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        let payloads: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9]);
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn concurrent_writer_and_reader_never_tear() {
        let rec = FlightRecorder::new(16);
        let writer = {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    // kind/a/b always agree: a == b == i.
                    rec.record(EventKind::Slide, i, i);
                }
            })
        };
        let mut seen = 0usize;
        while !writer.is_finished() {
            for e in rec.snapshot() {
                assert_eq!(e.a, e.b, "torn slot surfaced in a snapshot");
                assert_eq!(e.kind, EventKind::Slide);
                seen += 1;
            }
        }
        writer.join().unwrap();
        assert_eq!(rec.snapshot().len(), 16);
        assert!(seen > 0 || rec.recorded() == 50_000);
    }

    #[test]
    fn dump_shape_is_parseable() {
        let rec = FlightRecorder::new(4);
        rec.record(EventKind::InvariantCheck, 0, 0);
        rec.record(EventKind::Panic, 0, 0);
        let doc = rec.dump_json(3);
        let text = doc.pretty();
        let parsed = Json::parse(&text).expect("dump parses");
        assert_eq!(parsed.get("shard").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("recorded").and_then(Json::as_u64), Some(2));
        let events = parsed.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("kind").and_then(Json::as_str), Some("panic"));
    }

    #[test]
    fn dump_to_dir_writes_the_file() {
        let dir = std::env::temp_dir().join(format!("swag-trace-test-{}", std::process::id()));
        let rec = FlightRecorder::new(4);
        rec.record(EventKind::Drain, 1, 1);
        let path = rec.dump_to_dir(0, &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn event_time_kinds_round_trip() {
        for kind in [EventKind::LateDrop, EventKind::WatermarkAdvance] {
            assert_eq!(EventKind::from_u64(kind.to_u64()), kind);
        }
        assert_eq!(EventKind::LateDrop.as_str(), "late_drop");
        assert_eq!(EventKind::WatermarkAdvance.as_str(), "watermark_advance");
        // Code 6 stays the Custom fallback for unknown codes.
        assert_eq!(EventKind::from_u64(6), EventKind::Custom);
        assert_eq!(EventKind::from_u64(99), EventKind::Custom);
    }

    #[test]
    fn span_kinds_round_trip() {
        for kind in [EventKind::SpanStage, EventKind::SloBreach] {
            assert_eq!(EventKind::from_u64(kind.to_u64()), kind);
        }
        assert_eq!(EventKind::SpanStage.as_str(), "span_stage");
        assert_eq!(EventKind::SloBreach.as_str(), "slo_breach");
    }

    #[test]
    fn gseq_totally_orders_events_across_rings() {
        let a = FlightRecorder::new(8);
        let b = FlightRecorder::new(8);
        // Interleave writes across two rings; per-ring seq restarts at 0
        // in each, but gseq must still order the merged stream exactly as
        // recorded.
        a.record(EventKind::Custom, 0, 0);
        b.record(EventKind::Custom, 1, 0);
        a.record(EventKind::Custom, 2, 0);
        b.record(EventKind::Custom, 3, 0);
        a.record(EventKind::Custom, 4, 0);
        let merged = merge_events(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.len(), 5);
        let payloads: Vec<u64> = merged.iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        assert!(merged.windows(2).all(|w| w[0].gseq < w[1].gseq));
        // Per-ring seq alone would NOT have ordered these: both rings
        // start their local streams at seq 0.
        assert_eq!(merged[0].seq, 0);
        assert_eq!(merged[1].seq, 0);
    }

    #[test]
    fn gseq_is_unique_under_concurrent_recording() {
        let rings: Vec<FlightRecorder> = (0..4).map(|_| FlightRecorder::new(1024)).collect();
        let handles: Vec<_> = rings
            .iter()
            .map(|r| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        r.record(EventKind::Custom, i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let merged = merge_events(&rings.iter().map(|r| r.snapshot()).collect::<Vec<_>>());
        assert_eq!(merged.len(), 4000);
        assert!(
            merged.windows(2).all(|w| w[0].gseq < w[1].gseq),
            "gseq values must be strictly increasing after the merge"
        );
    }

    #[test]
    fn with_clock_shares_an_epoch_between_rings() {
        let clock = Stopwatch::start();
        let a = FlightRecorder::with_clock(4, clock);
        let b = FlightRecorder::with_clock(4, clock);
        a.record(EventKind::Custom, 0, 0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        b.record(EventKind::Custom, 0, 0);
        let ea = a.snapshot()[0];
        let eb = b.snapshot()[0];
        assert!(
            eb.ts_ns > ea.ts_ns,
            "later event on ring b must carry a later shared-epoch timestamp"
        );
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
        rec.record(EventKind::Custom, 9, 9);
        assert_eq!(rec.snapshot().len(), 1);
    }
}
