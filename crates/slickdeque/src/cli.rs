//! The stand-alone stream aggregator platform as a command-line tool —
//! the paper's §5.1 platform made operable.
//!
//! ```text
//! slickdeque-platform --op max --queries 60:10,600:60 --source debs:42 --tuples 10000
//! slickdeque-platform --op mean --queries 100:25 --source stdin < values.txt
//! ```
//!
//! Queries are `range:slide` pairs (tuples). Invertible operations run on
//! SlickDeque (Inv), selective ones on SlickDeque (Non-Inv); any plan the
//! multi-query engines cannot serve (Cutty punctuations, non-uniform
//! partial counts) falls back to the exact general executor.
//!
//! `--keyed` switches to the sharded engine: the stream is partitioned by
//! key (`--keys` DEBS machines or synthetic streams) across `--shards`
//! worker threads, and the shared plan runs independently per key:
//!
//! ```text
//! slickdeque-platform --op max --queries 60:10 --source debs:42 \
//!     --tuples 100000 --keyed --keys 20 --shards 4
//! ```
//!
//! `--batch N` selects bulk vs scalar ingestion: unkeyed runs feed the
//! shared-plan executor `N`-tuple slices through its batched push path,
//! keyed runs use `N` as the engine's channel batch size. Answers are
//! identical either way; batching only amortises per-tuple overheads.
//!
//! `--ooo` switches a keyed run to event time: each tuple is stamped with
//! its stream position as the event timestamp, `--queries` ranges and
//! slides are read in event-time units, and every key's windows run on a
//! FiBA finger B-tree, emitted when the watermark passes each window end.
//! `--disorder N` shuffles the stream with displacement at most `N`
//! timestamps; `--lateness N` replaces the source's watermark promise
//! with an explicit bound, dropping (and counting) tuples behind it:
//!
//! ```text
//! slickdeque-platform --op sum --queries 60:10 --source debs:42 \
//!     --tuples 100000 --keyed --shards 4 --ooo --disorder 256
//! ```

use crate::prelude::*;
use std::io::{BufRead, Write};
use std::str::FromStr;
use swag_core::ops::MeanPartial;
use swag_data::event::DisorderedKeyedSource;
use swag_data::keyed::{KeyedDebsSource, KeyedSource, KeyedWorkloadSource};
use swag_engine::{EngineConfig, EngineStats, KeyedEventWindows, KeyedPlans, ShardedEngine};
use swag_stream::TimeWindowSpec;

/// Which aggregate operation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpChoice {
    /// Windowed sum (invertible).
    Sum,
    /// Windowed mean (invertible).
    Mean,
    /// Windowed population standard deviation (invertible).
    StdDev,
    /// Windowed maximum (selective).
    Max,
    /// Windowed minimum (selective).
    Min,
}

impl FromStr for OpChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sum" => Ok(OpChoice::Sum),
            "mean" | "avg" => Ok(OpChoice::Mean),
            "stddev" | "std" => Ok(OpChoice::StdDev),
            "max" => Ok(OpChoice::Max),
            "min" => Ok(OpChoice::Min),
            other => Err(format!(
                "unknown op {other:?} (expected sum|mean|stddev|max|min)"
            )),
        }
    }
}

/// Where the tuples come from.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceChoice {
    /// One `f64` per line on standard input.
    Stdin,
    /// DEBS-shaped synthetic stream: `debs:<seed>[:<channel>]`.
    Debs {
        /// Generator seed.
        seed: u64,
        /// Energy channel (0..3).
        channel: usize,
    },
    /// Characterised synthetic workload: `workload:<name>[:<seed>]`.
    Synthetic {
        /// Workload name (uniform|walk|ascending|descending|sawtooth|constant).
        name: String,
        /// Generator seed.
        seed: u64,
    },
}

impl FromStr for SourceChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts[0] {
            "stdin" => Ok(SourceChoice::Stdin),
            "debs" => {
                let seed = parts.get(1).and_then(|p| p.parse().ok()).unwrap_or(42);
                let channel = parts.get(2).and_then(|p| p.parse().ok()).unwrap_or(0);
                if channel > 2 {
                    return Err("channel must be 0..3".into());
                }
                Ok(SourceChoice::Debs { seed, channel })
            }
            "workload" => {
                let name = parts
                    .get(1)
                    .ok_or("workload needs a name, e.g. workload:uniform")?
                    .to_string();
                let seed = parts.get(2).and_then(|p| p.parse().ok()).unwrap_or(42);
                Ok(SourceChoice::Synthetic { name, seed })
            }
            other => Err(format!("unknown source {other:?}")),
        }
    }
}

/// Which multi-query engine answers the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// SlickDeque (Inv for invertible ops, Non-Inv for selective ones) —
    /// the paper's contribution and the default.
    #[default]
    SlickDeque,
    /// The Naive / Panes final aggregation baseline.
    Naive,
    /// FlatFAT.
    FlatFat,
    /// B-Int.
    BInt,
    /// FlatFIT (dense multi-query regime).
    FlatFit,
    /// The exact general executor: serves any plan, including Cutty
    /// punctuations and non-uniform partial counts.
    General,
}

impl FromStr for EngineChoice {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "slickdeque" => Ok(EngineChoice::SlickDeque),
            "naive" => Ok(EngineChoice::Naive),
            "flatfat" => Ok(EngineChoice::FlatFat),
            "bint" => Ok(EngineChoice::BInt),
            "flatfit" => Ok(EngineChoice::FlatFit),
            "general" => Ok(EngineChoice::General),
            other => Err(format!(
                "unknown engine {other:?} (expected slickdeque|naive|flatfat|bint|flatfit|general)"
            )),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliConfig {
    /// The aggregate operation.
    pub op: OpChoice,
    /// The registered ACQs.
    pub queries: Vec<Query>,
    /// Partial-aggregation technique.
    pub pat: Pat,
    /// Multi-query engine.
    pub engine: EngineChoice,
    /// Tuple source.
    pub source: SourceChoice,
    /// Tuples to process (None = until the source ends).
    pub tuples: Option<u64>,
    /// Emit every answer (otherwise a summary only).
    pub emit: bool,
    /// Keyed mode: partition the stream by key and run the plan per key on
    /// the sharded engine.
    pub keyed: bool,
    /// Worker threads in keyed mode.
    pub shards: usize,
    /// Distinct keys the keyed sources generate (DEBS machines /
    /// synthetic streams).
    pub keys: usize,
    /// Ingestion batch size (`--batch`). `None` keeps the defaults:
    /// scalar pull-based execution unkeyed, the engine's default channel
    /// batch keyed. `Some(n > 1)` drives the bulk fast paths: chunked
    /// [`SharedPlanExecutor::push_batch`] unkeyed, `n`-tuple channel
    /// batches keyed.
    pub batch: Option<usize>,
    /// Serve live `/metrics` (Prometheus text) and `/metrics.json` on this
    /// address during a keyed run (e.g. `127.0.0.1:9184`; port 0 picks an
    /// ephemeral port, printed to stderr).
    pub metrics_addr: Option<String>,
    /// Per-shard flight-recorder ring capacity in events. `None` defaults
    /// to 4096 when `--trace-out` is given, otherwise tracing is off.
    pub trace_capacity: Option<usize>,
    /// Directory for `flightrec-<shard>.json` dumps (written on graceful
    /// drain and on worker panic).
    pub trace_out: Option<std::path::PathBuf>,
    /// Keep the metrics endpoint up this long after the run finishes, so
    /// a scraper can read the final counters (CI smoke uses this).
    pub metrics_hold_ms: u64,
    /// Event-time mode (`--ooo`): stamp tuples with event timestamps and
    /// run watermark-driven time windows on per-key FiBA finger B-trees.
    /// Requires `--keyed`; `--queries` ranges/slides are read in
    /// event-time units.
    pub ooo: bool,
    /// Bounded disorder injected into the event stream (`--disorder N`):
    /// tuples are shuffled with displacement at most `N` timestamps.
    /// 0 keeps the stream in order.
    pub disorder: u64,
    /// Explicit allowed lateness (`--lateness N`): the watermark trails
    /// the largest routed timestamp by `N`; tuples behind it are dropped
    /// and counted. `None` trusts the source's own watermark promise,
    /// under which nothing is late.
    pub lateness: Option<u64>,
    /// Resident-service mode (`--serve`): instead of running one plan to
    /// completion, start a `swag-server` owning named pipelines fed over
    /// a TCP ingest socket and managed over an HTTP control plane
    /// (`--metrics-addr` doubles as the control-plane address).
    pub serve: bool,
    /// Tuple-ingest TCP address in service mode (`--ingest-addr`;
    /// default `127.0.0.1:0`, the bound address is printed).
    pub ingest_addr: Option<String>,
    /// Snapshot directory in service mode (`--snapshot-dir`; default
    /// `results/snapshots`).
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Pipeline specs (JSON, repeatable `--pipeline`) created at start.
    pub pipelines: Vec<String>,
    /// Pipeline names (repeatable `--restore`) restored from their
    /// snapshots at start.
    pub restores: Vec<String>,
    /// Stop the service after this long (`--serve-hold-ms`; 0 = serve
    /// until the process is killed). Shutdown snapshots every pipeline.
    pub serve_hold_ms: u64,
}

impl CliConfig {
    /// Parse an argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<CliConfig, String> {
        let mut op = OpChoice::Sum;
        let mut queries = Vec::new();
        let mut pat = Pat::Pairs;
        let mut engine = EngineChoice::default();
        let mut source = SourceChoice::Debs {
            seed: 42,
            channel: 0,
        };
        let mut tuples = None;
        let mut emit = false;
        let mut keyed = false;
        let mut shards = 1usize;
        let mut keys = 8usize;
        let mut batch = None;
        let mut metrics_addr = None;
        let mut trace_capacity = None;
        let mut trace_out = None;
        let mut metrics_hold_ms = 0u64;
        let mut ooo = false;
        let mut disorder = 0u64;
        let mut lateness = None;
        let mut serve = false;
        let mut ingest_addr = None;
        let mut snapshot_dir = None;
        let mut pipelines = Vec::new();
        let mut restores = Vec::new();
        let mut serve_hold_ms = 0u64;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--op" => op = value("--op")?.parse()?,
                "--queries" => {
                    for spec in value("--queries")?.split(',') {
                        let (r, s) = spec
                            .split_once(':')
                            .ok_or_else(|| format!("bad query {spec:?}, expected range:slide"))?;
                        let range: u64 = r.parse().map_err(|e| format!("bad range {r:?}: {e}"))?;
                        let slide: u64 = s.parse().map_err(|e| format!("bad slide {s:?}: {e}"))?;
                        if range == 0 || slide == 0 || slide > range {
                            return Err(format!("invalid query {spec:?} (need 0 < slide ≤ range)"));
                        }
                        queries.push(Query::new(range, slide));
                    }
                }
                "--pat" => {
                    pat = match value("--pat")?.as_str() {
                        "panes" => Pat::Panes,
                        "pairs" => Pat::Pairs,
                        "cutty" => Pat::Cutty,
                        other => return Err(format!("unknown PAT {other:?}")),
                    }
                }
                "--engine" => engine = value("--engine")?.parse()?,
                "--source" => source = value("--source")?.parse()?,
                "--tuples" => {
                    tuples = Some(
                        value("--tuples")?
                            .parse()
                            .map_err(|e| format!("bad tuple count: {e}"))?,
                    )
                }
                "--emit" => emit = true,
                "--keyed" => keyed = true,
                "--shards" => {
                    shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("bad shard count: {e}"))?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                "--keys" => {
                    keys = value("--keys")?
                        .parse()
                        .map_err(|e| format!("bad key count: {e}"))?;
                    if keys == 0 {
                        return Err("--keys must be at least 1".into());
                    }
                }
                "--batch" => {
                    let b: usize = value("--batch")?
                        .parse()
                        .map_err(|e| format!("bad batch size: {e}"))?;
                    if b == 0 {
                        return Err("--batch must be at least 1".into());
                    }
                    batch = Some(b);
                }
                "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")?),
                "--trace-capacity" => {
                    let c: usize = value("--trace-capacity")?
                        .parse()
                        .map_err(|e| format!("bad trace capacity: {e}"))?;
                    if c == 0 {
                        return Err("--trace-capacity must be at least 1 event".into());
                    }
                    trace_capacity = Some(c);
                }
                "--trace-out" => trace_out = Some(std::path::PathBuf::from(value("--trace-out")?)),
                "--metrics-hold-ms" => {
                    metrics_hold_ms = value("--metrics-hold-ms")?
                        .parse()
                        .map_err(|e| format!("bad hold duration: {e}"))?;
                }
                "--ooo" => ooo = true,
                "--disorder" => {
                    disorder = value("--disorder")?
                        .parse()
                        .map_err(|e| format!("bad disorder bound: {e}"))?;
                }
                "--lateness" => {
                    lateness = Some(
                        value("--lateness")?
                            .parse()
                            .map_err(|e| format!("bad lateness: {e}"))?,
                    );
                }
                "--serve" => serve = true,
                "--ingest-addr" => ingest_addr = Some(value("--ingest-addr")?),
                "--snapshot-dir" => {
                    snapshot_dir = Some(std::path::PathBuf::from(value("--snapshot-dir")?))
                }
                "--pipeline" => pipelines.push(value("--pipeline")?),
                "--restore" => restores.push(value("--restore")?),
                "--serve-hold-ms" => {
                    serve_hold_ms = value("--serve-hold-ms")?
                        .parse()
                        .map_err(|e| format!("bad hold duration: {e}"))?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if !serve
            && (ingest_addr.is_some()
                || snapshot_dir.is_some()
                || !pipelines.is_empty()
                || !restores.is_empty()
                || serve_hold_ms > 0)
        {
            return Err(
                "--ingest-addr/--snapshot-dir/--pipeline/--restore/--serve-hold-ms require --serve"
                    .into(),
            );
        }
        if serve && (keyed || ooo || emit || !queries.is_empty()) {
            return Err(
                "--serve is the resident-service mode; windows are configured per pipeline \
                 (--pipeline JSON or the HTTP control plane), not via --queries/--keyed"
                    .into(),
            );
        }
        if queries.is_empty() && !serve {
            return Err("at least one --queries range:slide is required".into());
        }
        if tuples.is_none() && source != SourceChoice::Stdin && !serve {
            return Err("--tuples is required for endless sources".into());
        }
        if keyed && source == SourceChoice::Stdin {
            return Err("--keyed needs a keyed source (debs or workload), not stdin".into());
        }
        if ooo && !keyed {
            return Err("--ooo needs --keyed (event time runs on the sharded engine)".into());
        }
        if !ooo && (disorder > 0 || lateness.is_some()) {
            return Err("--disorder/--lateness require --ooo".into());
        }
        if !keyed
            && !serve
            && (metrics_addr.is_some()
                || trace_capacity.is_some()
                || trace_out.is_some()
                || metrics_hold_ms > 0)
        {
            return Err(
                "--metrics-addr/--trace-capacity/--trace-out/--metrics-hold-ms require --keyed"
                    .into(),
            );
        }
        Ok(CliConfig {
            op,
            queries,
            pat,
            engine,
            source,
            tuples,
            emit,
            keyed,
            shards,
            keys,
            batch,
            metrics_addr,
            trace_capacity,
            trace_out,
            metrics_hold_ms,
            ooo,
            disorder,
            lateness,
            serve,
            ingest_addr,
            snapshot_dir,
            pipelines,
            restores,
            serve_hold_ms,
        })
    }
}

/// Run the resident-service mode (`--serve`): start a [`SwagServer`],
/// create/restore the requested pipelines, and serve until the hold
/// expires (or forever when it is 0). Shutdown snapshots every pipeline.
///
/// [`SwagServer`]: swag_server::SwagServer
pub fn run_serve(cfg: &CliConfig) -> Result<(), String> {
    use swag_server::{PipelineSpec, ServerConfig, SwagServer};

    let mut server_cfg = ServerConfig::default();
    if let Some(addr) = &cfg.ingest_addr {
        server_cfg.ingest_addr = addr.clone();
    }
    if let Some(addr) = &cfg.metrics_addr {
        server_cfg.http_addr = addr.clone();
    }
    if let Some(dir) = &cfg.snapshot_dir {
        server_cfg.snapshot_dir = dir.clone();
    }
    let server = SwagServer::start(server_cfg).map_err(|e| format!("start service: {e}"))?;
    eprintln!(
        "serving: tuple ingest on {}, control plane + metrics on http://{}",
        server.ingest_addr(),
        server.http_addr()
    );
    for name in &cfg.restores {
        let spec = server.restore_pipeline(name)?;
        eprintln!("restored pipeline {:?} from its snapshot", spec.name);
    }
    for json in &cfg.pipelines {
        let spec = PipelineSpec::from_json(json)?;
        let name = spec.name.clone();
        server.create_pipeline(spec)?;
        eprintln!("created pipeline {name:?}");
    }
    if cfg.serve_hold_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(cfg.serve_hold_ms));
    } else {
        // Resident until the process is killed; an abrupt kill skips the
        // shutdown snapshot, which is why `DELETE` and `POST …/snapshot`
        // exist on the control plane.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    server.shutdown()
}

/// Drive a shared-plan executor over the whole source: pull-based when the
/// batch size is 1 (scalar), push-based in `batch`-tuple chunks otherwise.
/// Answers are bitwise identical either way.
fn drive_shared<O, M, K>(
    exec: &mut SharedPlanExecutor<O, M>,
    source: &mut VecSource,
    batch: usize,
    sink: &mut K,
) where
    O: AggregateOp<Input = f64> + Clone,
    M: MultiFinalAggregator<O>,
    K: Sink<O::Partial>,
{
    if batch <= 1 {
        exec.run(source, u64::MAX, sink);
    } else {
        let n = source.remaining();
        let values = source.take_values(n);
        for chunk in values.chunks(batch) {
            exec.push_batch(chunk, sink);
        }
    }
}

/// Resolve a workload name from the command line.
fn parse_workload(name: &str) -> Result<Workload, String> {
    Ok(match name {
        "uniform" => Workload::Uniform,
        "walk" => Workload::RandomWalk { sigma: 1.0 },
        "ascending" => Workload::Ascending,
        "descending" => Workload::Descending,
        "sawtooth" => Workload::Sawtooth { period: 512 },
        "constant" => Workload::Constant,
        other => return Err(format!("unknown workload {other:?}")),
    })
}

/// Materialise the configured source as a bounded tuple vector; `--tuples`
/// counts raw tuples, so endless sources are truncated here.
fn build_source(cfg: &CliConfig, stdin_values: Option<Vec<f64>>) -> VecSource {
    let budget = cfg.tuples.map(|t| t as usize);
    match &cfg.source {
        SourceChoice::Stdin => {
            let mut values = stdin_values.unwrap_or_default();
            if let Some(n) = budget {
                values.truncate(n);
            }
            VecSource::new(values)
        }
        SourceChoice::Debs { seed, channel } => {
            let n = budget.expect("validated: endless sources need --tuples");
            let mut src = DebsSource::new(*seed, *channel);
            VecSource::new(src.take_values(n))
        }
        SourceChoice::Synthetic { name, seed } => {
            let workload = parse_workload(name).unwrap_or_else(|e| panic!("{e}"));
            let n = budget.expect("validated: endless sources need --tuples");
            let mut src = WorkloadSource::new(workload, *seed);
            VecSource::new(src.take_values(n))
        }
    }
}

/// Materialise the configured source as a keyed source for `--keyed` runs.
fn build_keyed_source(cfg: &CliConfig) -> Result<Box<dyn KeyedSource>, String> {
    match &cfg.source {
        SourceChoice::Stdin => Err("stdin has no keys; use a debs or workload source".into()),
        SourceChoice::Debs { seed, channel } => {
            Ok(Box::new(KeyedDebsSource::new(*seed, cfg.keys, *channel)))
        }
        SourceChoice::Synthetic { name, seed } => Ok(Box::new(KeyedWorkloadSource::new(
            parse_workload(name)?,
            *seed,
            cfg.keys,
        ))),
    }
}

/// One query's outcome in the run summary.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySummary {
    /// The query as registered.
    pub query: Query,
    /// Answers produced.
    pub answers: u64,
    /// The final answer, rendered.
    pub last_answer: String,
}

/// Run the platform; returns per-query summaries. Answers are written to
/// `out` when `emit` is on, one `query_index<TAB>answer` line each.
pub fn run(
    cfg: &CliConfig,
    stdin_values: Option<Vec<f64>>,
    out: &mut dyn Write,
) -> Result<Vec<QuerySummary>, String> {
    if cfg.keyed {
        return run_keyed(cfg, out).map(|(summaries, _)| summaries);
    }
    let plan = SharedPlan::build(&cfg.queries, cfg.pat);
    let mut source = build_source(cfg, stdin_values);
    let slides = u64::MAX; // bounded by the materialised source

    if cfg.engine != EngineChoice::General
        && !(plan.all_edges_cut() && plan.uniform_query_ranges().is_some())
    {
        return Err(format!(
            "engine {:?} needs a uniform, punctuation-free plan (this one \
             has Cutty punctuations or non-uniform partial counts); use \
             --engine general",
            cfg.engine
        ));
    }

    let batch = cfg.batch.unwrap_or(1);
    if cfg.engine == EngineChoice::General && batch > 1 {
        return Err(
            "--batch drives the shared-plan executors; --engine general is \
             pull-based and always scalar"
                .into(),
        );
    }

    // The exact general executor serves any plan; the named engines run
    // the corresponding multi-query aggregator over the shared plan and
    // produce identical answers (verified by the test suite). `$slick` is
    // the SlickDeque flavour matching the op class: Inv for invertible
    // ops, Non-Inv for selective ones.
    macro_rules! run_engine {
        ($op:expr, $sink:ident, $slick:ident) => {{
            match cfg.engine {
                EngineChoice::General => {
                    GeneralPlanExecutor::new($op, plan.clone()).run(
                        &mut source,
                        slides,
                        &mut $sink,
                    );
                }
                EngineChoice::SlickDeque => drive_shared(
                    &mut SharedPlanExecutor::<_, $slick<_>>::new($op, plan.clone()),
                    &mut source,
                    batch,
                    &mut $sink,
                ),
                EngineChoice::Naive => drive_shared(
                    &mut SharedPlanExecutor::<_, MultiNaive<_>>::new($op, plan.clone()),
                    &mut source,
                    batch,
                    &mut $sink,
                ),
                EngineChoice::FlatFat => drive_shared(
                    &mut SharedPlanExecutor::<_, MultiFlatFat<_>>::new($op, plan.clone()),
                    &mut source,
                    batch,
                    &mut $sink,
                ),
                EngineChoice::BInt => drive_shared(
                    &mut SharedPlanExecutor::<_, MultiBInt<_>>::new($op, plan.clone()),
                    &mut source,
                    batch,
                    &mut $sink,
                ),
                EngineChoice::FlatFit => drive_shared(
                    &mut SharedPlanExecutor::<_, MultiFlatFit<_>>::new($op, plan.clone()),
                    &mut source,
                    batch,
                    &mut $sink,
                ),
            }
        }};
    }

    macro_rules! run_op {
        ($op:expr, $render:expr, $class:tt) => {{
            let op = $op;
            let mut sink = CollectSink::new();
            run_engine!(op, sink, $class);
            let mut summaries: Vec<QuerySummary> = cfg
                .queries
                .iter()
                .map(|q| QuerySummary {
                    query: *q,
                    answers: 0,
                    last_answer: "—".to_string(),
                })
                .collect();
            #[allow(clippy::redundant_closure_call)]
            for (qi, answer) in &sink.answers {
                let rendered: String = $render(&op, answer);
                if cfg.emit {
                    writeln!(out, "{qi}\t{rendered}").map_err(|e| e.to_string())?;
                }
                summaries[*qi].answers += 1;
                summaries[*qi].last_answer = rendered;
            }
            Ok(summaries)
        }};
    }

    match cfg.op {
        OpChoice::Sum => run_op!(
            Sum::<f64>::new(),
            |_op: &Sum<f64>, a: &f64| format!("{a:.6}"),
            MultiSlickDequeInv
        ),
        OpChoice::Mean => run_op!(
            Mean::new(),
            |op: &Mean, a: &MeanPartial| format!("{:.6}", op.lower(a)),
            MultiSlickDequeInv
        ),
        OpChoice::StdDev => run_op!(
            StdDev::new(),
            |op: &StdDev, a| format!("{:.6}", op.lower(a)),
            MultiSlickDequeInv
        ),
        OpChoice::Max => run_op!(
            MaxF64::new(),
            |_op: &MaxF64, a: &f64| format!("{a:.6}"),
            MultiSlickDequeNonInv
        ),
        OpChoice::Min => run_op!(
            MinF64::new(),
            |_op: &MinF64, a: &f64| format!("{a:.6}"),
            MultiSlickDequeNonInv
        ),
    }
}

/// Observability wiring for a keyed run: a registry (and live `/metrics`
/// endpoint) when `--metrics-addr` is set, a flight recorder when
/// `--trace-out` or `--trace-capacity` is set. The returned server (if
/// any) must be held until the run finishes, then shut down.
fn build_observability(
    cfg: &CliConfig,
) -> Result<
    (
        Option<swag_engine::MetricsServer>,
        swag_engine::ObservabilityConfig,
    ),
    String,
> {
    let registry = cfg
        .metrics_addr
        .as_ref()
        .map(|_| std::sync::Arc::new(swag_metrics::MetricRegistry::new()));
    let server = match (&cfg.metrics_addr, &registry) {
        (Some(addr), Some(registry)) => {
            let server = swag_engine::MetricsServer::start(addr.as_str(), registry.clone())
                .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
            eprintln!("metrics: serving http://{}/metrics", server.local_addr());
            Some(server)
        }
        _ => None,
    };
    let obs = swag_engine::ObservabilityConfig {
        registry: registry.clone(),
        trace_capacity: cfg.trace_capacity.unwrap_or(if cfg.trace_out.is_some() {
            4096
        } else {
            0
        }),
        trace_out: cfg.trace_out.clone(),
        sample_interval: registry
            .as_ref()
            .map(|_| std::time::Duration::from_millis(50)),
        labels: Vec::new(),
    };
    Ok((server, obs))
}

/// Run the platform in keyed mode on the sharded engine: the stream is
/// hash-partitioned across `--shards` workers and the shared plan runs
/// independently per key. Returns per-query summaries (aggregated over all
/// keys) plus the engine's run statistics. With `--emit`, answers are
/// written as `key<TAB>query_index<TAB>answer` lines, grouped by shard.
pub fn run_keyed(
    cfg: &CliConfig,
    out: &mut dyn Write,
) -> Result<(Vec<QuerySummary>, EngineStats), String> {
    if cfg.ooo {
        return run_keyed_events(cfg, out);
    }
    let plan = SharedPlan::build(&cfg.queries, cfg.pat);
    if !(plan.all_edges_cut() && plan.uniform_query_ranges().is_some()) {
        return Err("keyed mode runs shared plans per key and needs a uniform, \
             punctuation-free plan (this one has Cutty punctuations or \
             non-uniform partial counts)"
            .into());
    }
    if cfg.engine == EngineChoice::General {
        return Err("--engine general is not available with --keyed".into());
    }
    let tuples = cfg.tuples.ok_or("--tuples is required with --keyed")?;
    let mut source = build_keyed_source(cfg)?;
    let (server, obs) = build_observability(cfg)?;

    let engine = ShardedEngine::try_new(EngineConfig {
        shards: cfg.shards,
        batch: cfg.batch.unwrap_or(EngineConfig::default().batch),
        retain_answers: true,
        obs,
        ..EngineConfig::default()
    })?;

    // Per-key answers are lowered inside the shard workers, so every op
    // produces the same `(key, (query, f64))` shape here.
    macro_rules! keyed_with {
        ($op:expr, $multi:ident) => {{
            let op = $op;
            engine.run(source.as_mut(), tuples, |_shard| {
                KeyedPlans::<_, $multi<_>>::new(op, plan.clone())
            })
        }};
    }
    macro_rules! keyed_op {
        ($op:expr, $slick:ident) => {{
            match cfg.engine {
                EngineChoice::SlickDeque => keyed_with!($op, $slick),
                EngineChoice::Naive => keyed_with!($op, MultiNaive),
                EngineChoice::FlatFat => keyed_with!($op, MultiFlatFat),
                EngineChoice::BInt => keyed_with!($op, MultiBInt),
                EngineChoice::FlatFit => keyed_with!($op, MultiFlatFit),
                EngineChoice::General => unreachable!("rejected above"),
            }
        }};
    }

    let run = match cfg.op {
        OpChoice::Sum => keyed_op!(Sum::<f64>::new(), MultiSlickDequeInv),
        OpChoice::Mean => keyed_op!(Mean::new(), MultiSlickDequeInv),
        OpChoice::StdDev => keyed_op!(StdDev::new(), MultiSlickDequeInv),
        OpChoice::Max => keyed_op!(MaxF64::new(), MultiSlickDequeNonInv),
        OpChoice::Min => keyed_op!(MinF64::new(), MultiSlickDequeNonInv),
    };

    let mut summaries: Vec<QuerySummary> = cfg
        .queries
        .iter()
        .map(|q| QuerySummary {
            query: *q,
            answers: 0,
            last_answer: "—".to_string(),
        })
        .collect();
    for shard_answers in &run.answers {
        for &(key, (qi, answer)) in shard_answers {
            let rendered = format!("{answer:.6}");
            if cfg.emit {
                writeln!(out, "{key}\t{qi}\t{rendered}").map_err(|e| e.to_string())?;
            }
            summaries[qi].answers += 1;
            summaries[qi].last_answer = rendered;
        }
    }

    // Keep the endpoint alive for scrapers (CI smoke) before tearing it
    // down; shutdown is also what Drop would do, but doing it explicitly
    // keeps the hold window deliberate.
    if let Some(server) = server {
        if cfg.metrics_hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(cfg.metrics_hold_ms));
        }
        server.shutdown();
    }
    Ok((summaries, run.stats))
}

/// Run a `--ooo` event-time keyed run. Each tuple carries its stream
/// position as the event timestamp; `--disorder` shuffles the stream with
/// a provable displacement bound; every key's `--queries` time windows
/// run on a FiBA finger B-tree and close when the watermark passes their
/// end. With `--emit`, answers are written as
/// `key<TAB>query_index<TAB>window_end<TAB>answer` lines, grouped by
/// shard.
fn run_keyed_events(
    cfg: &CliConfig,
    out: &mut dyn Write,
) -> Result<(Vec<QuerySummary>, EngineStats), String> {
    if cfg.engine != EngineChoice::SlickDeque {
        return Err("--ooo always runs time windows on the FiBA finger B-tree; \
             --engine selects count-based multi-query engines and does not apply"
            .into());
    }
    let tuples = cfg.tuples.ok_or("--tuples is required with --keyed")?;
    let specs: Vec<TimeWindowSpec> = cfg
        .queries
        .iter()
        .map(|q| TimeWindowSpec::new(q.range, q.slide))
        .collect();
    // The disorder shuffle is seeded from the source seed so a run line
    // is reproducible end to end.
    let seed = match &cfg.source {
        SourceChoice::Stdin => unreachable!("validated: --keyed rejects stdin"),
        SourceChoice::Debs { seed, .. } | SourceChoice::Synthetic { seed, .. } => *seed,
    };
    let mut source = DisorderedKeyedSource::new(build_keyed_source(cfg)?, cfg.disorder, seed);
    let (server, obs) = build_observability(cfg)?;
    let engine = ShardedEngine::try_new(EngineConfig {
        shards: cfg.shards,
        batch: cfg.batch.unwrap_or(EngineConfig::default().batch),
        retain_answers: true,
        obs,
        ..EngineConfig::default()
    })?;

    macro_rules! events_op {
        ($op:expr) => {{
            let op = $op;
            engine.run_events(&mut source, tuples, cfg.lateness, |_shard| {
                KeyedEventWindows::new(op, specs.clone())
            })
        }};
    }
    let run = match cfg.op {
        OpChoice::Sum => events_op!(Sum::<f64>::new()),
        OpChoice::Mean => events_op!(Mean::new()),
        OpChoice::StdDev => events_op!(StdDev::new()),
        OpChoice::Max => events_op!(MaxF64::new()),
        OpChoice::Min => events_op!(MinF64::new()),
    };

    let mut summaries: Vec<QuerySummary> = cfg
        .queries
        .iter()
        .map(|q| QuerySummary {
            query: *q,
            answers: 0,
            last_answer: "—".to_string(),
        })
        .collect();
    for shard_answers in &run.answers {
        for &(key, (qi, end, answer)) in shard_answers {
            let rendered = format!("{answer:.6}");
            if cfg.emit {
                writeln!(out, "{key}\t{qi}\t{end}\t{rendered}").map_err(|e| e.to_string())?;
            }
            summaries[qi].answers += 1;
            summaries[qi].last_answer = rendered;
        }
    }

    if let Some(server) = server {
        if cfg.metrics_hold_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(cfg.metrics_hold_ms));
        }
        server.shutdown();
    }
    Ok((summaries, run.stats))
}

/// Read one `f64` per non-empty line.
pub fn read_stdin_values(reader: impl BufRead) -> Result<Vec<f64>, String> {
    let mut values = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        values.push(
            trimmed
                .parse::<f64>()
                .map_err(|e| format!("line {}: {e}", i + 1))?,
        );
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let cfg = CliConfig::parse(args(
            "--op max --queries 60:10,600:60 --pat cutty --source debs:7:1 --tuples 5000 --emit",
        ))
        .unwrap();
        assert_eq!(cfg.op, OpChoice::Max);
        assert_eq!(cfg.queries, vec![Query::new(60, 10), Query::new(600, 60)]);
        assert_eq!(cfg.pat, Pat::Cutty);
        assert_eq!(
            cfg.source,
            SourceChoice::Debs {
                seed: 7,
                channel: 1
            }
        );
        assert_eq!(cfg.tuples, Some(5000));
        assert!(cfg.emit);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CliConfig::parse(args("--op juggle --queries 4:1 --tuples 10")).is_err());
        assert!(CliConfig::parse(args("--op sum")).is_err()); // no queries
        assert!(CliConfig::parse(args("--op sum --queries 4:9 --tuples 1")).is_err());
        assert!(CliConfig::parse(args("--op sum --queries 4:1")).is_err()); // endless, no budget
        assert!(CliConfig::parse(args("--op sum --queries 4:1 --source mars --tuples 1")).is_err());
    }

    #[test]
    fn parses_service_mode() {
        let cfg = CliConfig::parse(args(
            "--serve --ingest-addr 127.0.0.1:7878 --metrics-addr 127.0.0.1:9184 \
             --snapshot-dir results/snapshots --restore bids --serve-hold-ms 50",
        ))
        .unwrap();
        assert!(cfg.serve);
        assert_eq!(cfg.ingest_addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:9184"));
        assert_eq!(cfg.restores, vec!["bids"]);
        assert_eq!(cfg.serve_hold_ms, 50);
        // Service flags without --serve, and batch flags with it, reject.
        assert!(
            CliConfig::parse(args("--op sum --queries 4:1 --tuples 1 --ingest-addr x")).is_err()
        );
        assert!(CliConfig::parse(args("--serve --queries 4:1")).is_err());
        assert!(CliConfig::parse(args("--serve --keyed")).is_err());
    }

    #[test]
    fn serve_mode_creates_pipeline_and_holds() {
        let dir = std::env::temp_dir().join(format!("swag-cli-serve-{}", std::process::id()));
        let cfg = CliConfig::parse(vec![
            "--serve".to_string(),
            "--serve-hold-ms".to_string(),
            "10".to_string(),
            "--snapshot-dir".to_string(),
            dir.display().to_string(),
            "--pipeline".to_string(),
            r#"{"name":"p","op":"sum","algorithm":"slickdeque","kind":"count","window":8}"#
                .to_string(),
        ])
        .unwrap();
        run_serve(&cfg).unwrap();
        // The hold expired and shutdown snapshotted the (empty) pipeline.
        assert!(dir.join("p.swag").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sum_over_stdin_matches_hand_computation() {
        let cfg = CliConfig::parse(args("--op sum --queries 3:1 --source stdin --emit")).unwrap();
        let mut out = Vec::new();
        let summaries = run(&cfg, Some(vec![1.0, 2.0, 3.0, 4.0]), &mut out).unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].answers, 4);
        assert_eq!(summaries[0].last_answer, "9.000000");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["0\t1.000000", "0\t3.000000", "0\t6.000000", "0\t9.000000"]
        );
    }

    #[test]
    fn max_with_heterogeneous_slides() {
        let cfg = CliConfig::parse(args("--op max --queries 6:2,8:4 --source stdin")).unwrap();
        let values: Vec<f64> = vec![3.0, 7.0, 1.0, 4.0, 9.0, 2.0, 5.0, 8.0];
        let mut out = Vec::new();
        let summaries = run(&cfg, Some(values), &mut out).unwrap();
        // Q1 reports at tuples 2,4,6,8; Q2 at 4,8.
        assert_eq!(summaries[0].answers, 4);
        assert_eq!(summaries[1].answers, 2);
        assert_eq!(summaries[0].last_answer, "9.000000"); // max of tuples 3..8
        assert_eq!(summaries[1].last_answer, "9.000000");
        assert!(out.is_empty(), "no --emit, no per-answer output");
    }

    #[test]
    fn mean_via_synthetic_source() {
        let cfg = CliConfig::parse(args(
            "--op mean --queries 16:4 --source workload:constant --tuples 64",
        ))
        .unwrap();
        let mut out = Vec::new();
        let summaries = run(&cfg, None, &mut out).unwrap();
        assert_eq!(summaries[0].answers, 16);
        assert_eq!(summaries[0].last_answer, "1.000000");
    }

    #[test]
    fn all_engines_agree_on_a_uniform_plan() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let mut reference: Option<Vec<QuerySummary>> = None;
        for engine in [
            "general",
            "slickdeque",
            "naive",
            "flatfat",
            "bint",
            "flatfit",
        ] {
            for op in ["sum", "max"] {
                let cfg = CliConfig::parse(args(&format!(
                    "--op {op} --queries 24:4,16:8 --engine {engine} --source stdin"
                )))
                .unwrap();
                let mut out = Vec::new();
                let got = run(&cfg, Some(values.clone()), &mut out).unwrap();
                match (&reference, op) {
                    (None, "sum") => reference = Some(got),
                    (Some(r), "sum") => {
                        assert_eq!(&got, r, "engine {engine}");
                    }
                    _ => {
                        // Max answers just need to be produced and equal
                        // across engines; compare against the general run.
                        let gcfg = CliConfig::parse(args(
                            "--op max --queries 24:4,16:8 --engine general --source stdin",
                        ))
                        .unwrap();
                        let mut gout = Vec::new();
                        let gref = run(&gcfg, Some(values.clone()), &mut gout).unwrap();
                        assert_eq!(got, gref, "engine {engine} (max)");
                    }
                }
            }
        }
    }

    #[test]
    fn named_engine_rejects_punctuated_plans() {
        // r=7, s=5 under Cutty produces punctuation edges.
        let cfg = CliConfig::parse(args(
            "--op sum --queries 7:5 --pat cutty --engine slickdeque --source stdin",
        ))
        .unwrap();
        let mut out = Vec::new();
        let err = run(&cfg, Some(vec![1.0; 20]), &mut out).unwrap_err();
        assert!(err.contains("general"), "{err}");
        // The general engine serves it fine.
        let cfg = CliConfig::parse(args(
            "--op sum --queries 7:5 --pat cutty --engine general --source stdin",
        ))
        .unwrap();
        let summaries = run(&cfg, Some(vec![1.0; 20]), &mut out).unwrap();
        assert_eq!(summaries[0].answers, 4);
    }

    #[test]
    fn keyed_flags_parse_and_validate() {
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed --shards 4 --keys 12",
        ))
        .unwrap();
        assert!(cfg.keyed);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.keys, 12);
        // stdin has no keys.
        assert!(CliConfig::parse(args("--op sum --queries 8:2 --source stdin --keyed")).is_err());
        assert!(CliConfig::parse(args("--op sum --queries 8:2 --tuples 1 --shards 0")).is_err());
    }

    #[test]
    fn observability_flags_parse_and_require_keyed() {
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed \
             --metrics-addr 127.0.0.1:0 --trace-capacity 512 --trace-out results \
             --metrics-hold-ms 250",
        ))
        .unwrap();
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.trace_capacity, Some(512));
        assert_eq!(
            cfg.trace_out.as_deref(),
            Some(std::path::Path::new("results"))
        );
        assert_eq!(cfg.metrics_hold_ms, 250);
        // Defaults when the flags are absent: no registry, no recorder.
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed",
        ))
        .unwrap();
        assert_eq!(cfg.metrics_addr, None);
        assert_eq!(cfg.trace_capacity, None);
        assert_eq!(cfg.trace_out, None);
        assert_eq!(cfg.metrics_hold_ms, 0);
        // The single-threaded path has no shards to observe.
        assert!(CliConfig::parse(args(
            "--op sum --queries 8:2 --tuples 100 --metrics-addr 127.0.0.1:0"
        ))
        .is_err());
        assert!(CliConfig::parse(args(
            "--op sum --queries 8:2 --tuples 100 --trace-out results"
        ))
        .is_err());
        // A zero-capacity ring records nothing and is a config error.
        assert!(CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed --trace-capacity 0"
        ))
        .is_err());
    }

    #[test]
    fn batch_flag_parses_and_validates() {
        let cfg = CliConfig::parse(args("--op sum --queries 8:2 --tuples 100 --batch 64")).unwrap();
        assert_eq!(cfg.batch, Some(64));
        let cfg = CliConfig::parse(args("--op sum --queries 8:2 --tuples 100")).unwrap();
        assert_eq!(cfg.batch, None);
        assert!(CliConfig::parse(args("--op sum --queries 8:2 --tuples 100 --batch 0")).is_err());
        assert!(CliConfig::parse(args("--op sum --queries 8:2 --tuples 100 --batch abc")).is_err());
    }

    #[test]
    fn batched_ingestion_matches_scalar() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64).collect();
        for engine in ["slickdeque", "naive", "flatfat"] {
            for op in ["sum", "max", "stddev"] {
                let scalar_cfg = CliConfig::parse(args(&format!(
                    "--op {op} --queries 24:4,16:8 --engine {engine} --source stdin --emit"
                )))
                .unwrap();
                let mut scalar_out = Vec::new();
                let scalar = run(&scalar_cfg, Some(values.clone()), &mut scalar_out).unwrap();

                for batch in [1usize, 7, 64, 512] {
                    let cfg = CliConfig::parse(args(&format!(
                        "--op {op} --queries 24:4,16:8 --engine {engine} --source stdin \
                         --emit --batch {batch}"
                    )))
                    .unwrap();
                    let mut out = Vec::new();
                    let got = run(&cfg, Some(values.clone()), &mut out).unwrap();
                    assert_eq!(got, scalar, "{engine}/{op} batch {batch}");
                    assert_eq!(out, scalar_out, "{engine}/{op} batch {batch} emit");
                }
            }
        }
    }

    #[test]
    fn general_engine_rejects_bulk_batching() {
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --engine general --source stdin --batch 8",
        ))
        .unwrap();
        let mut out = Vec::new();
        let err = run(&cfg, Some(vec![1.0; 32]), &mut out).unwrap_err();
        assert!(err.contains("--batch"), "{err}");
    }

    #[test]
    fn keyed_batch_size_feeds_engine_config() {
        let cfg = CliConfig::parse(args(
            "--op sum --queries 4:1 --source workload:constant --tuples 64 \
             --keyed --shards 2 --keys 3 --batch 16",
        ))
        .unwrap();
        let mut out = Vec::new();
        let (summaries, stats) = run_keyed(&cfg, &mut out).unwrap();
        assert_eq!(summaries[0].answers, 64);
        // 64 tuples over 16-tuple channel batches cannot need more than a
        // couple of messages per shard.
        assert!(stats.batches >= 4, "batches = {}", stats.batches);
        assert!(stats.tuples_per_batch() <= 16.0);
    }

    #[test]
    fn keyed_answers_are_shard_count_invariant() {
        let mut reference: Option<Vec<QuerySummary>> = None;
        for shards in [1usize, 3] {
            let cfg = CliConfig::parse(args(&format!(
                "--op max --queries 16:4,8:2 --source debs:9 --tuples 4000 \
                 --keyed --shards {shards} --keys 7"
            )))
            .unwrap();
            let mut out = Vec::new();
            let (summaries, stats) = run_keyed(&cfg, &mut out).unwrap();
            assert_eq!(stats.tuples, 4000);
            assert_eq!(stats.shards.len(), shards);
            assert_eq!(stats.keys(), 7);
            // Answer *counts* per query are shard-invariant (the last
            // rendered answer depends on shard iteration order, so compare
            // counts only).
            let counts: Vec<u64> = summaries.iter().map(|s| s.answers).collect();
            match &reference {
                None => reference = Some(summaries),
                Some(r) => {
                    assert_eq!(counts, r.iter().map(|s| s.answers).collect::<Vec<_>>());
                }
            }
        }
    }

    #[test]
    fn keyed_emit_lines_match_per_key_windows() {
        // One key, constant workload: every sum answer over r=4, s=1 after
        // warm-up is 4.0.
        let cfg = CliConfig::parse(args(
            "--op sum --queries 4:1 --source workload:constant --tuples 32 \
             --keyed --shards 2 --keys 1 --emit",
        ))
        .unwrap();
        let mut out = Vec::new();
        let (summaries, _) = run_keyed(&cfg, &mut out).unwrap();
        assert_eq!(summaries[0].answers, 32);
        assert_eq!(summaries[0].last_answer, "4.000000");
        let text = String::from_utf8(out).unwrap();
        let last = text.lines().last().unwrap();
        assert_eq!(last, "0\t0\t4.000000");
    }

    #[test]
    fn keyed_run_routes_through_run_entrypoint() {
        let cfg = CliConfig::parse(args(
            "--op mean --queries 8:2 --source debs:5 --tuples 1000 --keyed --shards 2",
        ))
        .unwrap();
        let mut out = Vec::new();
        let summaries = run(&cfg, None, &mut out).unwrap();
        assert_eq!(summaries.len(), 1);
        assert!(summaries[0].answers > 0);
    }

    #[test]
    fn ooo_flags_parse_and_validate() {
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed \
             --ooo --disorder 16 --lateness 32",
        ))
        .unwrap();
        assert!(cfg.ooo);
        assert_eq!(cfg.disorder, 16);
        assert_eq!(cfg.lateness, Some(32));
        // Defaults: event time is off, streams are in order, the source's
        // watermark promise is trusted.
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed",
        ))
        .unwrap();
        assert!(!cfg.ooo);
        assert_eq!(cfg.disorder, 0);
        assert_eq!(cfg.lateness, None);
        // Event time runs on the sharded engine.
        assert!(CliConfig::parse(args("--op sum --queries 8:2 --tuples 100 --ooo")).is_err());
        // Disorder/lateness describe an event-time stream.
        assert!(CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed --disorder 4"
        ))
        .is_err());
        assert!(CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed --lateness 4"
        ))
        .is_err());
    }

    #[test]
    fn ooo_emit_reports_window_ends() {
        // One key, constant 1.0 workload, tumbling 8 over timestamps
        // 0..32: four closed windows of sum 8.0 each.
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:8 --source workload:constant --tuples 32 \
             --keyed --keys 1 --ooo --emit",
        ))
        .unwrap();
        let mut out = Vec::new();
        let (summaries, stats) = run_keyed(&cfg, &mut out).unwrap();
        assert_eq!(summaries[0].answers, 4);
        assert_eq!(summaries[0].last_answer, "8.000000");
        assert_eq!(stats.late_tuples, 0);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "0\t0\t8\t8.000000",
                "0\t0\t16\t8.000000",
                "0\t0\t24\t8.000000",
                "0\t0\t32\t8.000000",
            ]
        );
    }

    #[test]
    fn ooo_answers_are_disorder_and_shard_invariant() {
        let mut reference: Option<Vec<String>> = None;
        for shards in [1usize, 3] {
            let cfg = CliConfig::parse(args(&format!(
                "--op max --queries 32:8 --source debs:9 --tuples 2000 \
                 --keyed --keys 5 --shards {shards} --ooo --disorder 64 --emit"
            )))
            .unwrap();
            let mut out = Vec::new();
            let (summaries, stats) = run_keyed(&cfg, &mut out).unwrap();
            assert_eq!(stats.tuples, 2000);
            assert_eq!(stats.late_tuples, 0, "the source's promise drops nothing");
            assert!(summaries[0].answers > 0);
            let mut lines: Vec<String> = String::from_utf8(out)
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect();
            lines.sort();
            match &reference {
                None => reference = Some(lines),
                Some(r) => assert_eq!(&lines, r, "{shards} shards"),
            }
        }
    }

    #[test]
    fn ooo_rejects_named_engines() {
        let cfg = CliConfig::parse(args(
            "--op sum --queries 8:2 --source debs:3 --tuples 100 --keyed --ooo --engine naive",
        ))
        .unwrap();
        let mut out = Vec::new();
        let err = run_keyed(&cfg, &mut out).unwrap_err();
        assert!(err.contains("--engine"), "{err}");
    }

    #[test]
    fn stdin_reader_parses_and_skips_blanks() {
        let input = "1.5\n\n  2.5 \n-3\n";
        let values = read_stdin_values(input.as_bytes()).unwrap();
        assert_eq!(values, vec![1.5, 2.5, -3.0]);
        assert!(read_stdin_values("abc\n".as_bytes()).is_err());
    }
}
