//! Stand-alone stream aggregator platform (paper §5.1) as a CLI.
//!
//! ```text
//! slickdeque-platform --op max --queries 60:10,600:60 --source debs:42 --tuples 10000
//! echo "1 2 3" | tr ' ' '\n' | slickdeque-platform --op sum --queries 2:1 --source stdin --emit
//! slickdeque-platform --serve --ingest-addr 127.0.0.1:7878 --metrics-addr 127.0.0.1:9184 \
//!     --pipeline '{"name":"bids","op":"sum","algorithm":"slickdeque","kind":"count","window":1000}'
//! ```

use slickdeque::cli::{
    read_stdin_values, run, run_keyed, run_serve, CliConfig, QuerySummary, SourceChoice,
};

fn print_summaries(summaries: &[QuerySummary]) {
    eprintln!("query            answers   last answer");
    for s in summaries {
        eprintln!(
            "{:<16} {:>7}   {}",
            s.query.to_string(),
            s.answers,
            s.last_answer
        );
    }
}

fn main() {
    let cfg = match CliConfig::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: slickdeque-platform --op <sum|mean|stddev|max|min> \
                 --queries r:s[,r:s…] [--pat panes|pairs|cutty] \
                 [--engine slickdeque|naive|flatfat|bint|flatfit|general] \
                 [--source stdin|debs:<seed>[:<ch>]|workload:<name>[:<seed>]] \
                 [--tuples N] [--batch N] [--emit] [--keyed] [--shards N] [--keys N] \
                 [--metrics-addr host:port] [--metrics-hold-ms N] \
                 [--trace-capacity N] [--trace-out DIR]\n\
                 service:   slickdeque-platform --serve [--ingest-addr host:port] \
                 [--metrics-addr host:port] [--snapshot-dir DIR] \
                 [--pipeline JSON]... [--restore NAME]... [--serve-hold-ms N]"
            );
            std::process::exit(2);
        }
    };
    if cfg.serve {
        if let Err(e) = run_serve(&cfg) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut stdout = std::io::stdout().lock();
    if cfg.keyed {
        match run_keyed(&cfg, &mut stdout) {
            Ok((summaries, stats)) => {
                print_summaries(&summaries);
                eprintln!(
                    "engine: {} shards, {} keys, {} tuples in {:.3}s ({:.0} tuples/s), \
                     max queue depth {}, skew {:.2}",
                    stats.shards.len(),
                    stats.keys(),
                    stats.tuples,
                    stats.elapsed.as_secs_f64(),
                    stats.tuples_per_sec(),
                    stats.max_queue_depth(),
                    stats.skew()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let stdin_values = if cfg.source == SourceChoice::Stdin {
        match read_stdin_values(std::io::stdin().lock()) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error reading stdin: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    match run(&cfg, stdin_values, &mut stdout) {
        Ok(summaries) => print_summaries(&summaries),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
