//! Stand-alone stream aggregator platform (paper §5.1) as a CLI.
//!
//! ```text
//! slickdeque-platform --op max --queries 60:10,600:60 --source debs:42 --tuples 10000
//! echo "1 2 3" | tr ' ' '\n' | slickdeque-platform --op sum --queries 2:1 --source stdin --emit
//! ```

use slickdeque::cli::{read_stdin_values, run, CliConfig, SourceChoice};

fn main() {
    let cfg = match CliConfig::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: slickdeque-platform --op <sum|mean|stddev|max|min> \
                 --queries r:s[,r:s…] [--pat panes|pairs|cutty] \
                 [--engine slickdeque|naive|flatfat|bint|flatfit|general] \
                 [--source stdin|debs:<seed>[:<ch>]|workload:<name>[:<seed>]] \
                 [--tuples N] [--emit]"
            );
            std::process::exit(2);
        }
    };
    let stdin_values = if cfg.source == SourceChoice::Stdin {
        match read_stdin_values(std::io::stdin().lock()) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error reading stdin: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let mut stdout = std::io::stdout().lock();
    match run(&cfg, stdin_values, &mut stdout) {
        Ok(summaries) => {
            eprintln!("query            answers   last answer");
            for s in summaries {
                eprintln!(
                    "{:<16} {:>7}   {}",
                    s.query.to_string(),
                    s.answers,
                    s.last_answer
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
