//! Stand-alone stream aggregator platform (paper §5.1) as a CLI.
//!
//! ```text
//! slickdeque-platform --op max --queries 60:10,600:60 --source debs:42 --tuples 10000
//! echo "1 2 3" | tr ' ' '\n' | slickdeque-platform --op sum --queries 2:1 --source stdin --emit
//! ```

use slickdeque::cli::{read_stdin_values, run, run_keyed, CliConfig, QuerySummary, SourceChoice};

fn print_summaries(summaries: &[QuerySummary]) {
    eprintln!("query            answers   last answer");
    for s in summaries {
        eprintln!(
            "{:<16} {:>7}   {}",
            s.query.to_string(),
            s.answers,
            s.last_answer
        );
    }
}

fn main() {
    let cfg = match CliConfig::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: slickdeque-platform --op <sum|mean|stddev|max|min> \
                 --queries r:s[,r:s…] [--pat panes|pairs|cutty] \
                 [--engine slickdeque|naive|flatfat|bint|flatfit|general] \
                 [--source stdin|debs:<seed>[:<ch>]|workload:<name>[:<seed>]] \
                 [--tuples N] [--batch N] [--emit] [--keyed] [--shards N] [--keys N] \
                 [--metrics-addr host:port] [--metrics-hold-ms N] \
                 [--trace-capacity N] [--trace-out DIR]"
            );
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if cfg.keyed {
        match run_keyed(&cfg, &mut stdout) {
            Ok((summaries, stats)) => {
                print_summaries(&summaries);
                eprintln!(
                    "engine: {} shards, {} keys, {} tuples in {:.3}s ({:.0} tuples/s), \
                     max queue depth {}, skew {:.2}",
                    stats.shards.len(),
                    stats.keys(),
                    stats.tuples,
                    stats.elapsed.as_secs_f64(),
                    stats.tuples_per_sec(),
                    stats.max_queue_depth(),
                    stats.skew()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let stdin_values = if cfg.source == SourceChoice::Stdin {
        match read_stdin_values(std::io::stdin().lock()) {
            Ok(v) => Some(v),
            Err(e) => {
                eprintln!("error reading stdin: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    match run(&cfg, stdin_values, &mut stdout) {
        Ok(summaries) => print_summaries(&summaries),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
