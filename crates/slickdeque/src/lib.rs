//! # slickdeque — high throughput, low latency sliding-window aggregation
//!
//! A from-scratch Rust reproduction of *SlickDeque: High Throughput and
//! Low Latency Incremental Sliding-Window Aggregation* (Shein,
//! Chrysanthis, Labrinidis — EDBT 2018): the SlickDeque algorithms, every
//! baseline they are compared against, the multi-ACQ shared-plan
//! machinery, and the stand-alone streaming platform used to evaluate
//! them.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`swag_core`] (re-exported as `core`) — operations and the window algorithms;
//! * [`swag_plan`] (`plan`) — ACQs, PATs, shared execution plans;
//! * [`swag_stream`] (`stream`) — sources, executors, sinks;
//! * [`swag_data`] (`data`) — DEBS12-shaped dataset synthesis, keyed sources;
//! * [`swag_engine`] (`engine`) — the sharded, keyed, multi-threaded engine;
//! * [`swag_ooo`] (`ooo`) — event-time out-of-order aggregation (FiBA finger B-tree);
//! * [`swag_metrics`] (`metrics`) — latency/throughput/memory instrumentation.
//!
//! ## Choosing an algorithm
//!
//! | You have | Use | Cost per slide |
//! |---|---|---|
//! | an invertible op (Sum, Mean, …) | [`SlickDequeInv`] | exactly 2 combines |
//! | a selective op (Max, Min, ArgMax, …) | [`SlickDequeNonInv`] | < 2 combines amortized |
//! | any associative op, need low latency | [`Daba`] | ≤ 8 combines worst case |
//! | any associative op, need throughput | [`TwoStacks`] / [`FlatFit`] | 3 combines amortized |
//! | many ACQs over one stream | [`MultiSlickDequeInv`] / [`MultiSlickDequeNonInv`] | 2q / input-dependent |
//!
//! ## Quick start
//!
//! ```
//! use slickdeque::prelude::*;
//!
//! // Maximum stock price over the last 3 ticks.
//! let op = Max::<f64>::new();
//! let mut window = SlickDequeNonInv::new(op, 3);
//! for price in [101.0, 103.5, 102.0, 99.8] {
//!     window.slide(op.lift(&price));
//! }
//! assert_eq!(window.query(), Some(103.5)); // 101.0 expired
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use swag_core as core;
pub use swag_data as data;
pub use swag_engine as engine;
pub use swag_metrics as metrics;
pub use swag_ooo as ooo;
pub use swag_plan as plan;
pub use swag_server as server;
pub use swag_stream as stream;

pub mod cli;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use swag_core::aggregator::{FinalAggregator, MemoryFootprint, MultiFinalAggregator};
    pub use swag_core::algorithms::{
        BInt, Daba, FlatFat, FlatFit, Naive, SlickDequeInv, SlickDequeNonInv, SlickDequeRange,
        TimeSlickDequeInv, TimeSlickDequeNonInv, TwoStacks,
    };
    pub use swag_core::multi::{
        MultiBInt, MultiFlatFat, MultiFlatFit, MultiFlatFitSparse, MultiNaive, MultiSlickDequeInv,
        MultiSlickDequeNonInv, MultiTimeSlickDequeInv, MultiTimeSlickDequeNonInv,
    };
    pub use swag_core::ops::{
        AggregateOp, AlphaMax, ArgMax, ArgMin, Count, CountingOp, First, GeometricMean,
        InvertibleOp, Last, Max, MaxF64, Mean, Min, MinF64, MinMax, OpCounter, PairOp, Product,
        Range, SelectiveOp, StdDev, Sum, SumSquares, Variance,
    };
    pub use swag_data::{
        energy_stream, DebsGenerator, DisorderedKeyedSource, Key, KeyedDebsSource,
        KeyedEventSource, KeyedSource, KeyedVecEventSource, KeyedVecSource, KeyedWorkloadSource,
        Workload,
    };
    pub use swag_engine::{
        shard_of, EngineConfig, EngineStats, EventBatch, EventProcessor, KeyedEventWindows,
        KeyedPlans, KeyedWindows, ShardProcessor, ShardStats, ShardedEngine,
    };
    pub use swag_metrics::{
        LatencyRecorder, LatencySummary, QueueDepthGauge, Throughput, ThroughputMeter,
    };
    pub use swag_ooo::{FingerBTree, Timestamp};
    pub use swag_plan::{Pat, Query, SharedPlan, TimeQuery};
    pub use swag_stream::{
        run_single_query, CollectSink, CountSink, DebsSource, GeneralPlanExecutor,
        SharedPlanExecutor, Sink, Source, TimeAnswer, TimeWindowExec, TimeWindowSpec, VecSource,
        WorkloadSource,
    };
}

#[doc(inline)]
pub use prelude::*;
