//! Event-time equivalence: the FiBA finger B-tree against the paper's
//! count-based SlickDeque aggregators, and order-insensitivity of the
//! event-time pipeline under bounded disorder.
//!
//! Three contracts are checked:
//!
//! * Fed the same stream **in order**, a [`FingerBTree`] maintaining a
//!   count-window FIFO must agree with [`SlickDequeInv`] on every slide
//!   under exact (integer) operations, and with [`SlickDequeNonInv`]
//!   **bitwise** under float Max/Min (selection never rounds, so the
//!   tree's reassociated folds cannot diverge).
//! * A [`TimeWindowExec`] fed any permutation of a stream with
//!   displacement at most `d`, with the watermark trailing the frontier
//!   by `d`, must emit exactly the in-order run's answers.
//! * The sharded engine's event path must be invariant to the disorder
//!   bound itself: per-key answers at disorder 0 and 256 coincide.

use slickdeque::prelude::*;
use std::collections::BTreeMap;
use swag_data::prng::Xoshiro256StarStar;

/// Drive a count-window FIFO of `window` partials through both a
/// SlickDeque aggregator (`slide`) and a [`FingerBTree`] keyed by stream
/// position (`insert` + `evict_older_than`), comparing the window
/// aggregate after every tuple with `same`.
fn check_in_order<O, A>(
    op: O,
    window: usize,
    inputs: &[O::Input],
    same: impl Fn(&O::Partial, &O::Partial) -> bool,
) where
    O: AggregateOp + Clone,
    A: FinalAggregator<O>,
{
    let mut deque = A::with_capacity(op.clone(), window);
    let mut tree = FingerBTree::new(op.clone());
    for (i, v) in inputs.iter().enumerate() {
        let expected = deque.slide(op.lift(v));
        tree.insert(i as u64, op.lift(v));
        if i >= window {
            tree.evict_older_than(i as u64 + 1 - window as u64);
        }
        let got = tree.query();
        assert!(
            same(&got, &expected),
            "{} w={window} i={i}: tree {got:?} != deque {expected:?}",
            A::NAME
        );
        assert_eq!(tree.len(), deque.len(), "w={window} i={i}");
    }
}

#[test]
fn in_order_finger_btree_matches_slickdeque_inv_exactly() {
    let values: Vec<i64> = (0..1500).map(|i| ((i * 37) % 101) - 50).collect();
    for &w in &[1usize, 7, 64, 257] {
        check_in_order::<_, SlickDequeInv<_>>(Sum::<i64>::new(), w, &values, |a, b| a == b);
        check_in_order::<_, SlickDequeInv<_>>(Count::<i64>::new(), w, &values, |a, b| a == b);
    }
}

#[test]
fn in_order_finger_btree_matches_slickdeque_noninv_bitwise() {
    let values = Workload::Uniform.generate(1500, 11);
    for &w in &[1usize, 7, 64, 257] {
        check_in_order::<_, SlickDequeNonInv<_>>(MaxF64::new(), w, &values, |a, b| {
            a.to_bits() == b.to_bits()
        });
        check_in_order::<_, SlickDequeNonInv<_>>(MinF64::new(), w, &values, |a, b| {
            a.to_bits() == b.to_bits()
        });
    }
}

/// Permute `(ts, value)` tuples with displacement at most `disorder`:
/// each tuple gets a perturbed position `p = ts + jitter(0..=disorder)`
/// and the stream is released in `p` order (ties prefer the larger
/// timestamp, so small bounds still invert neighbours).
type Perturbed = Vec<(u64, std::cmp::Reverse<u64>, i64)>;

fn displace(events: &[(u64, i64)], disorder: u64, seed: u64) -> Vec<(u64, i64)> {
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut perturbed: Perturbed = events
        .iter()
        .map(|&(ts, v)| (ts + rng.gen_below(disorder + 1), std::cmp::Reverse(ts), v))
        .collect();
    perturbed.sort();
    perturbed
        .into_iter()
        .map(|(_, std::cmp::Reverse(ts), v)| (ts, v))
        .collect()
}

#[test]
fn time_windows_are_order_insensitive_within_lateness() {
    const DISORDER: u64 = 16;
    let specs = vec![TimeWindowSpec::new(32, 8), TimeWindowSpec::tumbling(50)];
    let events: Vec<(u64, i64)> = (0..600).map(|ts| (ts, ((ts * 37) % 101) as i64)).collect();

    let run = |stream: &[(u64, i64)]| {
        let mut exec = TimeWindowExec::new(Sum::<i64>::new(), specs.clone());
        let mut answers = Vec::new();
        let mut frontier = 0u64;
        for &(ts, v) in stream {
            frontier = frontier.max(ts);
            assert!(
                exec.insert(ts, &v),
                "a watermark trailing by the disorder bound never refuses"
            );
            answers.extend(exec.advance_watermark(frontier.saturating_sub(DISORDER)));
        }
        answers.extend(exec.finish());
        answers
    };

    let reference = run(&events);
    assert!(!reference.is_empty());
    for seed in [1u64, 7, 23] {
        let shuffled = displace(&events, DISORDER, seed);
        assert_ne!(shuffled, events, "seed {seed} must actually shuffle");
        assert_eq!(run(&shuffled), reference, "seed {seed}");
    }
}

#[test]
fn engine_event_answers_are_disorder_invariant() {
    // Integer-valued f64 sums are exact, so reassociation under disorder
    // cannot round differently and the comparison is bitwise.
    let tuples: Vec<(Key, f64)> = (0..3000)
        .map(|i| ((i * 7 % 5) as Key, ((i * 37) % 101) as f64))
        .collect();
    // Per key: (query index, window end, answer bits).
    type PerKey = BTreeMap<Key, Vec<(usize, u64, u64)>>;
    let mut reference: Option<PerKey> = None;
    for disorder in [0u64, 256] {
        let mut source =
            DisorderedKeyedSource::new(KeyedVecSource::new(tuples.clone()), disorder, 5);
        let engine = ShardedEngine::new(EngineConfig {
            shards: 2,
            retain_answers: true,
            ..EngineConfig::default()
        });
        let run = engine.run_events(&mut source, u64::MAX, None, |_shard| {
            KeyedEventWindows::new(Sum::<f64>::new(), vec![TimeWindowSpec::new(64, 16)])
        });
        assert_eq!(run.stats.tuples, 3000);
        assert_eq!(
            run.stats.late_tuples, 0,
            "the source's watermark promise drops nothing"
        );
        let mut per_key: BTreeMap<Key, Vec<(usize, u64, u64)>> = BTreeMap::new();
        for shard in &run.answers {
            for &(key, (q, end, v)) in shard {
                per_key.entry(key).or_default().push((q, end, v.to_bits()));
            }
        }
        match &reference {
            None => reference = Some(per_key),
            Some(r) => assert_eq!(&per_key, r, "disorder {disorder}"),
        }
    }
}
