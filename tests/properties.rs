//! Property-based tests (proptest) on the core data structures and
//! invariants: algebraic op laws, chunked deque vs a `VecDeque` model,
//! DABA's region invariants under arbitrary FIFO schedules, the monotone
//! deque's dominance invariant, and shared-plan structural properties.

use proptest::collection::vec;
use proptest::prelude::*;
use slickdeque::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ----- algebraic laws on exact carriers --------------------------------

    #[test]
    fn sum_monoid_laws(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
        let op = Sum::<i64>::new();
        prop_assert_eq!(op.combine(&op.combine(&a, &b), &c), op.combine(&a, &op.combine(&b, &c)));
        prop_assert_eq!(op.combine(&op.identity(), &a), a);
        prop_assert_eq!(op.inverse_combine(&op.combine(&a, &b), &b), a);
    }

    #[test]
    fn max_selective_and_associative(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let op = Max::<i64>::new();
        let (pa, pb, pc) = (op.lift(&a), op.lift(&b), op.lift(&c));
        let assoc_l = op.combine(&op.combine(&pa, &pb), &pc);
        let assoc_r = op.combine(&pa, &op.combine(&pb, &pc));
        prop_assert_eq!(assoc_l, assoc_r);
        let ab = op.combine(&pa, &pb);
        prop_assert!(ab == pa || ab == pb);
    }

    #[test]
    fn variance_inverse_roundtrip(xs in vec(-100.0f64..100.0, 1..20), y in -100.0f64..100.0) {
        let op = Variance::new();
        let mut acc = op.identity();
        for x in &xs {
            acc = op.combine(&acc, &op.lift(x));
        }
        let with = op.combine(&acc, &op.lift(&y));
        let back = op.inverse_combine(&with, &op.lift(&y));
        prop_assert!((back.sum - acc.sum).abs() < 1e-9);
        prop_assert!((back.sum_squares - acc.sum_squares).abs() < 1e-6);
        prop_assert_eq!(back.count, acc.count);
    }

    #[test]
    fn minmax_combine_is_commutative_and_associative(
        xs in vec(any::<i32>(), 1..12),
    ) {
        let op = MinMax::<i32>::new();
        // Fold left and fold right must agree.
        let partials: Vec<_> = xs.iter().map(|x| op.lift(x)).collect();
        let left = partials.iter().fold(op.identity(), |a, p| op.combine(&a, p));
        let right = partials
            .iter()
            .rev()
            .fold(op.identity(), |a, p| op.combine(p, &a));
        prop_assert_eq!(left, right);
    }

    // ----- chunked deque vs VecDeque model ----------------------------------

    #[test]
    fn chunked_deque_behaves_like_vecdeque(
        ops in vec(0u8..4, 1..400),
        cap in 1usize..17,
    ) {
        let mut sut = slickdeque::core::chunked::ChunkedDeque::with_chunk_capacity(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut counter = 0u32;
        for op in ops {
            match op {
                0 | 1 => {
                    counter += 1;
                    sut.push_back(counter);
                    model.push_back(counter);
                }
                2 => {
                    let got = sut.pop_front();
                    let expect = model.pop_front().is_some();
                    prop_assert_eq!(got, expect);
                }
                _ => {
                    let got = sut.pop_back();
                    let expect = model.pop_back();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(sut.len(), model.len());
            prop_assert_eq!(sut.front().copied(), model.front().copied());
            prop_assert_eq!(sut.back().copied(), model.back().copied());
            // Random access parity.
            for i in 0..model.len() {
                prop_assert_eq!(sut.get(i), model.get(i));
            }
            // Iteration parity.
            let a: Vec<u32> = sut.iter().copied().collect();
            let b: Vec<u32> = model.iter().copied().collect();
            prop_assert_eq!(a, b);
        }
    }

    // ----- DABA under arbitrary FIFO schedules ------------------------------

    #[test]
    fn daba_invariants_under_arbitrary_fifo(
        schedule in vec((0u8..2, 1u8..6), 1..80),
    ) {
        let op = Sum::<i64>::new();
        let mut daba = Daba::new(op, 512);
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut v = 0i64;
        for (kind, count) in schedule {
            for _ in 0..count {
                if kind == 0 {
                    v += 1;
                    daba.insert(v);
                    model.push_back(v);
                } else if !model.is_empty() {
                    daba.evict();
                    model.pop_front();
                }
                daba.check_invariants();
                let expect: i64 = model.iter().sum();
                prop_assert_eq!(daba.query(), expect);
            }
        }
    }

    #[test]
    fn daba_matches_naive_on_random_streams(
        stream in vec(-1000i64..1000, 1..300),
        window in 1usize..40,
    ) {
        let op = Sum::<i64>::new();
        let mut daba = Daba::new(op, window);
        let mut naive = Naive::new(op, window);
        for &x in &stream {
            prop_assert_eq!(daba.slide(x), naive.slide(x));
        }
    }

    // ----- monotone deque invariants ----------------------------------------

    #[test]
    fn slickdeque_dominance_invariant(
        stream in vec(-1000i64..1000, 1..300),
        window in 1usize..40,
    ) {
        let op = Max::<i64>::new();
        let mut sd = SlickDequeNonInv::new(op, window);
        let mut naive = Naive::new(op, window);
        for x in &stream {
            let got = sd.slide(op.lift(x));
            prop_assert_eq!(got, naive.slide(op.lift(x)));
            sd.check_invariants();
            prop_assert!(sd.deque_len() <= window.min(stream.len()));
        }
    }

    #[test]
    fn multi_slickdeque_matches_multi_naive(
        stream in vec(-1000i64..1000, 1..200),
        ranges in vec(1usize..30, 1..6),
    ) {
        let op = Max::<i64>::new();
        let mut deque = MultiSlickDequeNonInv::with_ranges(op, &ranges);
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for x in &stream {
            deque.slide_multi(op.lift(x), &mut o1);
            naive.slide_multi(op.lift(x), &mut o2);
            prop_assert_eq!(&o1, &o2);
        }
    }

    #[test]
    fn multi_slickdeque_inv_matches_multi_naive(
        stream in vec(-1000i64..1000, 1..200),
        ranges in vec(1usize..30, 1..6),
    ) {
        let op = Sum::<i64>::new();
        let mut inv = MultiSlickDequeInv::with_ranges(op, &ranges);
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for x in &stream {
            inv.slide_multi(*x, &mut o1);
            naive.slide_multi(*x, &mut o2);
            prop_assert_eq!(&o1, &o2);
        }
    }

    // ----- FlatFIT / FlatFAT / B-Int against the reference ------------------

    #[test]
    fn flatfit_matches_naive(
        stream in vec(-1000i64..1000, 1..300),
        window in 1usize..50,
    ) {
        let op = Sum::<i64>::new();
        let mut fit = FlatFit::new(op, window);
        let mut naive = Naive::new(op, window);
        for &x in &stream {
            prop_assert_eq!(fit.slide(x), naive.slide(x));
        }
    }

    #[test]
    fn tree_algorithms_match_naive(
        stream in vec(-1000i64..1000, 1..200),
        window in 1usize..50,
    ) {
        let op = Sum::<i64>::new();
        let mut fat = FlatFat::new(op, window);
        let mut bint = BInt::new(op, window);
        let mut naive = Naive::new(op, window);
        for &x in &stream {
            let expect = naive.slide(x);
            prop_assert_eq!(fat.slide(x), expect);
            prop_assert_eq!(bint.slide(x), expect);
        }
    }

    // ----- shared-plan structural properties ---------------------------------

    #[test]
    fn plan_edges_tile_the_composite_slide(
        specs in vec((1u64..30, 1u64..10), 1..4),
    ) {
        let queries: Vec<Query> = specs
            .iter()
            .map(|&(extra, s)| Query::new(s + extra, s))
            .collect();
        for pat in [Pat::Panes, Pat::Pairs, Pat::Cutty] {
            let plan = SharedPlan::build(&queries, pat);
            // Edge lengths sum to the composite slide.
            let total: u64 = plan.edges().iter().map(|e| e.length).sum();
            prop_assert_eq!(total, plan.composite_slide());
            // Positions are strictly increasing and end at the composite.
            let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
            prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(*positions.last().unwrap(), plan.composite_slide());
            // Every query reports exactly composite/slide times per cycle.
            for (qi, q) in queries.iter().enumerate() {
                let reports: usize = plan
                    .edges()
                    .iter()
                    .filter(|e| e.queries.contains(&qi))
                    .count();
                prop_assert_eq!(reports as u64, plan.composite_slide() / q.slide);
            }
            // wSize is positive and bounded by the largest range (a
            // partial spans at least one tuple).
            let max_range = queries.iter().map(|q| q.range).max().unwrap();
            prop_assert!(plan.wsize() >= 1);
            prop_assert!(plan.wsize() as u64 <= max_range);
        }
    }

    #[test]
    fn plan_execution_equals_brute_force(
        specs in vec((1u64..12, 1u64..6), 1..3),
        seed in 0u64..1000,
    ) {
        let queries: Vec<Query> = specs
            .iter()
            .map(|&(extra, s)| Query::new(s + extra, s))
            .collect();
        let stream = Workload::Uniform.generate(200, seed);
        let int_stream: Vec<f64> = stream.iter().map(|v| (v * 50.0).round()).collect();
        for pat in [Pat::Panes, Pat::Pairs, Pat::Cutty] {
            let plan = SharedPlan::build(&queries, pat);
            let op = Sum::<f64>::new();
            let mut exec = GeneralPlanExecutor::new(op, plan);
            let mut sink = CollectSink::new();
            exec.run(&mut VecSource::new(int_stream.clone()), 500, &mut sink);
            for (qi, q) in queries.iter().enumerate() {
                let answers: Vec<f64> = sink.for_query(qi).into_iter().cloned().collect();
                for (k, got) in answers.iter().enumerate() {
                    let p = (k + 1) * q.slide as usize;
                    let lo = p.saturating_sub(q.range as usize);
                    let expect: f64 = int_stream[lo..p].iter().sum();
                    prop_assert!((got - expect).abs() < 1e-9,
                        "pat={:?} q={} k={}: {} vs {}", pat, q, k, got, expect);
                }
            }
        }
    }

    // ----- latency statistics ------------------------------------------------

    #[test]
    fn latency_summary_orders_percentiles(samples in vec(0u64..1_000_000, 1..500)) {
        let mut rec = LatencyRecorder::new();
        for s in &samples {
            rec.record_ns(*s);
        }
        let summary = rec.summarize_dropping(0.0);
        prop_assert!(summary.min <= summary.p25);
        prop_assert!(summary.p25 <= summary.median);
        prop_assert!(summary.median <= summary.p75);
        prop_assert!(summary.p75 <= summary.max);
        prop_assert!(summary.mean >= summary.min as f64);
        prop_assert!(summary.mean <= summary.max as f64);
    }
}

// ----- extensions: sparse FlatFIT, resize, reorder buffer -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sparse_flatfit_matches_multi_naive(
        stream in vec(-1000i64..1000, 1..250),
        ranges in vec(1usize..40, 1..6),
    ) {
        let op = Sum::<i64>::new();
        let mut sparse = MultiFlatFitSparse::with_ranges(op, &ranges);
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for x in &stream {
            sparse.slide_multi(*x, &mut o1);
            naive.slide_multi(*x, &mut o2);
            prop_assert_eq!(&o1, &o2);
        }
    }

    #[test]
    fn slickdeque_inv_resize_stays_consistent(
        stream in vec(-1000i64..1000, 20..200),
        w1 in 1usize..30,
        w2 in 1usize..30,
        at_frac in 0.1f64..0.9,
    ) {
        let split = ((stream.len() as f64) * at_frac) as usize;
        let op = Sum::<i64>::new();
        let mut sd = SlickDequeInv::new(op, w1);
        for &v in &stream[..split] {
            sd.slide(v);
        }
        sd.resize(w2);
        // After w2 further slides the resize history has fully cycled out;
        // compare against a fresh window-w2 reference over the suffix.
        let mut reference = Naive::new(op, w2);
        for (i, &v) in stream[split..].iter().enumerate() {
            let got = sd.slide(v);
            let expect = reference.slide(v);
            if i + 1 >= w2 {
                prop_assert_eq!(got, expect, "suffix slide {}", i);
            }
        }
    }

    #[test]
    fn slickdeque_noninv_resize_stays_consistent(
        stream in vec(-1000i64..1000, 20..200),
        w1 in 1usize..30,
        w2 in 1usize..30,
        at_frac in 0.1f64..0.9,
    ) {
        let split = ((stream.len() as f64) * at_frac) as usize;
        let op = Max::<i64>::new();
        let mut sd = SlickDequeNonInv::new(op, w1);
        for &v in &stream[..split] {
            sd.slide(op.lift(&v));
        }
        sd.resize(w2);
        sd.check_invariants();
        let mut reference = Naive::new(op, w2);
        for (i, &v) in stream[split..].iter().enumerate() {
            let got = sd.slide(op.lift(&v));
            let expect = reference.slide(op.lift(&v));
            sd.check_invariants();
            if i + 1 >= w2 {
                prop_assert_eq!(got, expect, "suffix slide {}", i);
            }
        }
    }

    #[test]
    fn reorder_buffer_repairs_bounded_displacement(
        values in vec(-1000i64..1000, 1..150),
        depth in 1usize..8,
        seed in 0u64..1000,
    ) {
        use slickdeque::stream::reorder::ReorderBuffer;
        // Shuffle locally: swap disjoint adjacent blocks of size ≤ depth.
        let n = values.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut i = 0;
        while i + 1 < n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x & 1 == 1 {
                order.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        let mut buf = ReorderBuffer::new(depth.max(2));
        let mut out = Vec::new();
        for &idx in &order {
            buf.push(idx as u64, values[idx] as f64).unwrap();
            while let Some(v) = buf.pop_ready() {
                out.push(v as i64);
            }
        }
        buf.flush();
        while let Some(v) = buf.pop_ready() {
            out.push(v as i64);
        }
        prop_assert_eq!(out, values);
    }
}

// ----- time-based windows and CLI parsing ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_multi_inv_matches_brute_force(
        gaps in vec(0u64..50, 1..120),
        values in vec(-500i64..500, 120..121),
        ranges in vec(1u64..300, 1..4),
    ) {
        let stream: Vec<(u64, i64)> = gaps
            .iter()
            .scan(0u64, |ts, g| {
                *ts += g;
                Some(*ts)
            })
            .zip(values.iter().copied())
            .collect();
        let op = Sum::<i64>::new();
        let mut agg = MultiTimeSlickDequeInv::new(op, &ranges);
        let mut out = Vec::new();
        for (i, &(ts, v)) in stream.iter().enumerate() {
            agg.insert(ts, v, &mut out);
            for (k, &r) in agg.ranges_ms().iter().enumerate() {
                let expect: i64 = stream[..=i]
                    .iter()
                    .filter(|(t, _)| (*t as i128) > ts as i128 - r as i128)
                    .map(|(_, v)| v)
                    .sum();
                prop_assert_eq!(out[k], expect, "tuple {} range {}", i, r);
            }
        }
    }

    #[test]
    fn time_multi_noninv_matches_brute_force(
        gaps in vec(0u64..50, 1..120),
        values in vec(-500i64..500, 120..121),
        ranges in vec(1u64..300, 1..4),
    ) {
        let stream: Vec<(u64, i64)> = gaps
            .iter()
            .scan(0u64, |ts, g| {
                *ts += g;
                Some(*ts)
            })
            .zip(values.iter().copied())
            .collect();
        let op = Max::<i64>::new();
        let mut agg = MultiTimeSlickDequeNonInv::new(op, &ranges);
        let mut out = Vec::new();
        for (i, &(ts, v)) in stream.iter().enumerate() {
            agg.insert(ts, op.lift(&v), &mut out);
            for (k, &r) in agg.ranges_ms().iter().enumerate() {
                let expect = stream[..=i]
                    .iter()
                    .filter(|(t, _)| (*t as i128) > ts as i128 - r as i128)
                    .map(|(_, v)| *v)
                    .max();
                prop_assert_eq!(out[k], expect, "tuple {} range {}", i, r);
            }
        }
    }

    #[test]
    fn cli_query_specs_round_trip(specs in vec((1u64..10_000, 1u64..100), 1..6)) {
        use slickdeque::cli::CliConfig;
        let valid: Vec<(u64, u64)> = specs
            .iter()
            .map(|&(r, s)| (r.max(s), s))
            .collect();
        let spec_str = valid
            .iter()
            .map(|(r, s)| format!("{r}:{s}"))
            .collect::<Vec<_>>()
            .join(",");
        let args = format!("--op sum --queries {spec_str} --source stdin");
        let cfg = CliConfig::parse(args.split_whitespace().map(str::to_string)).unwrap();
        prop_assert_eq!(cfg.queries.len(), valid.len());
        for (q, (r, s)) in cfg.queries.iter().zip(&valid) {
            prop_assert_eq!(q.range, *r);
            prop_assert_eq!(q.slide, *s);
        }
    }
}
