//! Randomized property tests on the core data structures and invariants:
//! algebraic op laws, chunked deque vs a `VecDeque` model, DABA's region
//! invariants under arbitrary FIFO schedules, the monotone deque's
//! dominance invariant, and shared-plan structural properties.
//!
//! Driven by the vendored [`Xoshiro256StarStar`] PRNG instead of proptest
//! so the suite builds without crates.io access. Every case derives from a
//! fixed base seed plus the case index, so failures reproduce exactly;
//! a failing assertion names its case seed.

use slickdeque::data::Xoshiro256StarStar as Rng;
use slickdeque::prelude::*;
use std::collections::VecDeque;

/// Run `body` for `cases` deterministic seeds. The closure receives the
/// per-case RNG; assertion messages should include `rng`'s seed via the
/// `case` argument for reproduction.
fn check(cases: u64, mut body: impl FnMut(&mut Rng, u64)) {
    const BASE: u64 = 0x5EED_CA5E_0000_0000;
    for case in 0..cases {
        let mut rng = Rng::new(BASE ^ case);
        body(&mut rng, case);
    }
}

fn vec_i64(rng: &mut Rng, lo: i64, hi: i64, min_len: usize, max_len: usize) -> Vec<i64> {
    let len = rng.gen_range_usize(min_len, max_len);
    (0..len).map(|_| rng.gen_range_i64(lo, hi)).collect()
}

fn vec_usize(rng: &mut Rng, lo: usize, hi: usize, min_len: usize, max_len: usize) -> Vec<usize> {
    let len = rng.gen_range_usize(min_len, max_len);
    (0..len).map(|_| rng.gen_range_usize(lo, hi)).collect()
}

// ----- algebraic laws on exact carriers --------------------------------

#[test]
fn sum_monoid_laws() {
    check(128, |rng, case| {
        let (a, b, c) = (
            rng.gen_range_i64(-1000, 1000),
            rng.gen_range_i64(-1000, 1000),
            rng.gen_range_i64(-1000, 1000),
        );
        let op = Sum::<i64>::new();
        assert_eq!(
            op.combine(&op.combine(&a, &b), &c),
            op.combine(&a, &op.combine(&b, &c)),
            "case {case}"
        );
        assert_eq!(op.combine(&op.identity(), &a), a, "case {case}");
        assert_eq!(
            op.inverse_combine(&op.combine(&a, &b), &b),
            a,
            "case {case}"
        );
    });
}

#[test]
fn max_selective_and_associative() {
    check(128, |rng, case| {
        let (a, b, c) = (
            rng.next_u64() as i64,
            rng.next_u64() as i64,
            rng.next_u64() as i64,
        );
        let op = Max::<i64>::new();
        let (pa, pb, pc) = (op.lift(&a), op.lift(&b), op.lift(&c));
        let assoc_l = op.combine(&op.combine(&pa, &pb), &pc);
        let assoc_r = op.combine(&pa, &op.combine(&pb, &pc));
        assert_eq!(assoc_l, assoc_r, "case {case}");
        let ab = op.combine(&pa, &pb);
        assert!(ab == pa || ab == pb, "case {case}: not selective");
    });
}

#[test]
fn variance_inverse_roundtrip() {
    check(128, |rng, case| {
        let len = rng.gen_range_usize(1, 20);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range_f64(-100.0, 100.0)).collect();
        let y = rng.gen_range_f64(-100.0, 100.0);
        let op = Variance::new();
        let mut acc = op.identity();
        for x in &xs {
            acc = op.combine(&acc, &op.lift(x));
        }
        let with = op.combine(&acc, &op.lift(&y));
        let back = op.inverse_combine(&with, &op.lift(&y));
        assert!((back.sum - acc.sum).abs() < 1e-9, "case {case}");
        assert!(
            (back.sum_squares - acc.sum_squares).abs() < 1e-6,
            "case {case}"
        );
        assert_eq!(back.count, acc.count, "case {case}");
    });
}

#[test]
fn minmax_combine_is_commutative_and_associative() {
    check(128, |rng, case| {
        let len = rng.gen_range_usize(1, 12);
        let xs: Vec<i32> = (0..len).map(|_| rng.next_u64() as i32).collect();
        let op = MinMax::<i32>::new();
        // Fold left and fold right must agree.
        let partials: Vec<_> = xs.iter().map(|x| op.lift(x)).collect();
        let left = partials
            .iter()
            .fold(op.identity(), |a, p| op.combine(&a, p));
        let right = partials
            .iter()
            .rev()
            .fold(op.identity(), |a, p| op.combine(p, &a));
        assert_eq!(left, right, "case {case}");
    });
}

// ----- chunked deque vs VecDeque model ----------------------------------

#[test]
fn chunked_deque_behaves_like_vecdeque() {
    check(128, |rng, case| {
        let ops = vec_usize(rng, 0, 4, 1, 400);
        let cap = rng.gen_range_usize(1, 17);
        let mut sut = slickdeque::core::chunked::ChunkedDeque::with_chunk_capacity(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut counter = 0u32;
        for op in ops {
            match op {
                0 | 1 => {
                    counter += 1;
                    sut.push_back(counter);
                    model.push_back(counter);
                }
                2 => {
                    let got = sut.pop_front();
                    let expect = model.pop_front().is_some();
                    assert_eq!(got, expect, "case {case}");
                }
                _ => {
                    let got = sut.pop_back();
                    let expect = model.pop_back();
                    assert_eq!(got, expect, "case {case}");
                }
            }
            assert_eq!(sut.len(), model.len(), "case {case}");
            assert_eq!(sut.front().copied(), model.front().copied(), "case {case}");
            assert_eq!(sut.back().copied(), model.back().copied(), "case {case}");
            // Random access parity.
            for i in 0..model.len() {
                assert_eq!(sut.get(i), model.get(i), "case {case} index {i}");
            }
            // Iteration parity.
            let a: Vec<u32> = sut.iter().copied().collect();
            let b: Vec<u32> = model.iter().copied().collect();
            assert_eq!(a, b, "case {case}");
        }
    });
}

// ----- DABA under arbitrary FIFO schedules ------------------------------

#[test]
fn daba_invariants_under_arbitrary_fifo() {
    check(128, |rng, case| {
        let steps = rng.gen_range_usize(1, 80);
        let schedule: Vec<(u8, u8)> = (0..steps)
            .map(|_| (rng.gen_below(2) as u8, rng.gen_range_u64(1, 6) as u8))
            .collect();
        let op = Sum::<i64>::new();
        let mut daba = Daba::new(op, 512);
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut v = 0i64;
        for (kind, count) in schedule {
            for _ in 0..count {
                if kind == 0 {
                    v += 1;
                    daba.insert(v);
                    model.push_back(v);
                } else if !model.is_empty() {
                    daba.evict();
                    model.pop_front();
                }
                daba.check_invariants().unwrap();
                let expect: i64 = model.iter().sum();
                assert_eq!(daba.query(), expect, "case {case}");
            }
        }
    });
}

#[test]
fn daba_matches_naive_on_random_streams() {
    check(128, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 300);
        let window = rng.gen_range_usize(1, 40);
        let op = Sum::<i64>::new();
        let mut daba = Daba::new(op, window);
        let mut naive = Naive::new(op, window);
        for &x in &stream {
            assert_eq!(daba.slide(x), naive.slide(x), "case {case}");
        }
    });
}

// ----- monotone deque invariants ----------------------------------------

#[test]
fn slickdeque_dominance_invariant() {
    check(128, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 300);
        let window = rng.gen_range_usize(1, 40);
        let op = Max::<i64>::new();
        let mut sd = SlickDequeNonInv::new(op, window);
        let mut naive = Naive::new(op, window);
        for x in &stream {
            let got = sd.slide(op.lift(x));
            assert_eq!(got, naive.slide(op.lift(x)), "case {case}");
            sd.check_invariants().unwrap();
            assert!(sd.deque_len() <= window.min(stream.len()), "case {case}");
        }
    });
}

#[test]
fn multi_slickdeque_matches_multi_naive() {
    check(128, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 200);
        let ranges = vec_usize(rng, 1, 30, 1, 6);
        let op = Max::<i64>::new();
        let mut deque = MultiSlickDequeNonInv::with_ranges(op, &ranges);
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for x in &stream {
            deque.slide_multi(op.lift(x), &mut o1);
            naive.slide_multi(op.lift(x), &mut o2);
            assert_eq!(o1, o2, "case {case}");
        }
    });
}

#[test]
fn multi_slickdeque_inv_matches_multi_naive() {
    check(128, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 200);
        let ranges = vec_usize(rng, 1, 30, 1, 6);
        let op = Sum::<i64>::new();
        let mut inv = MultiSlickDequeInv::with_ranges(op, &ranges);
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for x in &stream {
            inv.slide_multi(*x, &mut o1);
            naive.slide_multi(*x, &mut o2);
            assert_eq!(o1, o2, "case {case}");
        }
    });
}

// ----- FlatFIT / FlatFAT / B-Int against the reference ------------------

#[test]
fn flatfit_matches_naive() {
    check(128, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 300);
        let window = rng.gen_range_usize(1, 50);
        let op = Sum::<i64>::new();
        let mut fit = FlatFit::new(op, window);
        let mut naive = Naive::new(op, window);
        for &x in &stream {
            assert_eq!(fit.slide(x), naive.slide(x), "case {case}");
        }
    });
}

#[test]
fn tree_algorithms_match_naive() {
    check(128, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 200);
        let window = rng.gen_range_usize(1, 50);
        let op = Sum::<i64>::new();
        let mut fat = FlatFat::new(op, window);
        let mut bint = BInt::new(op, window);
        let mut naive = Naive::new(op, window);
        for &x in &stream {
            let expect = naive.slide(x);
            assert_eq!(fat.slide(x), expect, "case {case}");
            assert_eq!(bint.slide(x), expect, "case {case}");
        }
    });
}

// ----- shared-plan structural properties ---------------------------------

fn random_queries(rng: &mut Rng, max_extra: u64, max_slide: u64, max_n: usize) -> Vec<Query> {
    let n = rng.gen_range_usize(1, max_n);
    (0..n)
        .map(|_| {
            let extra = rng.gen_range_u64(1, max_extra);
            let s = rng.gen_range_u64(1, max_slide);
            Query::new(s + extra, s)
        })
        .collect()
}

#[test]
fn plan_edges_tile_the_composite_slide() {
    check(128, |rng, case| {
        let queries = random_queries(rng, 30, 10, 4);
        for pat in [Pat::Panes, Pat::Pairs, Pat::Cutty] {
            let plan = SharedPlan::build(&queries, pat);
            // Edge lengths sum to the composite slide.
            let total: u64 = plan.edges().iter().map(|e| e.length).sum();
            assert_eq!(total, plan.composite_slide(), "case {case} {pat:?}");
            // Positions are strictly increasing and end at the composite.
            let positions: Vec<u64> = plan.edges().iter().map(|e| e.position).collect();
            assert!(
                positions.windows(2).all(|w| w[0] < w[1]),
                "case {case} {pat:?}"
            );
            assert_eq!(
                *positions.last().unwrap(),
                plan.composite_slide(),
                "case {case} {pat:?}"
            );
            // Every query reports exactly composite/slide times per cycle.
            for (qi, q) in queries.iter().enumerate() {
                let reports: usize = plan
                    .edges()
                    .iter()
                    .filter(|e| e.queries.contains(&qi))
                    .count();
                assert_eq!(
                    reports as u64,
                    plan.composite_slide() / q.slide,
                    "case {case} {pat:?} q{qi}"
                );
            }
            // wSize is positive and bounded by the largest range (a
            // partial spans at least one tuple).
            let max_range = queries.iter().map(|q| q.range).max().unwrap();
            assert!(plan.wsize() >= 1, "case {case} {pat:?}");
            assert!(plan.wsize() as u64 <= max_range, "case {case} {pat:?}");
        }
    });
}

#[test]
fn plan_execution_equals_brute_force() {
    check(96, |rng, case| {
        let queries = random_queries(rng, 12, 6, 3);
        let seed = rng.gen_range_u64(0, 1000);
        let stream = Workload::Uniform.generate(200, seed);
        let int_stream: Vec<f64> = stream.iter().map(|v| (v * 50.0).round()).collect();
        for pat in [Pat::Panes, Pat::Pairs, Pat::Cutty] {
            let plan = SharedPlan::build(&queries, pat);
            let op = Sum::<f64>::new();
            let mut exec = GeneralPlanExecutor::new(op, plan);
            let mut sink = CollectSink::new();
            exec.run(&mut VecSource::new(int_stream.clone()), 500, &mut sink);
            for (qi, q) in queries.iter().enumerate() {
                let answers: Vec<f64> = sink.for_query(qi).into_iter().cloned().collect();
                for (k, got) in answers.iter().enumerate() {
                    let p = (k + 1) * q.slide as usize;
                    let lo = p.saturating_sub(q.range as usize);
                    let expect: f64 = int_stream[lo..p].iter().sum();
                    assert!(
                        (got - expect).abs() < 1e-9,
                        "case {case} pat={pat:?} q={q} k={k}: {got} vs {expect}"
                    );
                }
            }
        }
    });
}

// ----- latency statistics ------------------------------------------------

#[test]
fn latency_summary_orders_percentiles() {
    check(128, |rng, case| {
        let len = rng.gen_range_usize(1, 500);
        let samples: Vec<u64> = (0..len).map(|_| rng.gen_below(1_000_000)).collect();
        let mut rec = LatencyRecorder::new();
        for s in &samples {
            rec.record_ns(*s);
        }
        let summary = rec.summarize_dropping(0.0);
        assert!(summary.min <= summary.p25, "case {case}");
        assert!(summary.p25 <= summary.median, "case {case}");
        assert!(summary.median <= summary.p75, "case {case}");
        assert!(summary.p75 <= summary.max, "case {case}");
        assert!(summary.mean >= summary.min as f64, "case {case}");
        assert!(summary.mean <= summary.max as f64, "case {case}");
    });
}

// ----- extensions: sparse FlatFIT, resize, reorder buffer ----------------

#[test]
fn sparse_flatfit_matches_multi_naive() {
    check(96, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 1, 250);
        let ranges = vec_usize(rng, 1, 40, 1, 6);
        let op = Sum::<i64>::new();
        let mut sparse = MultiFlatFitSparse::with_ranges(op, &ranges);
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        for x in &stream {
            sparse.slide_multi(*x, &mut o1);
            naive.slide_multi(*x, &mut o2);
            assert_eq!(o1, o2, "case {case}");
        }
    });
}

#[test]
fn slickdeque_inv_resize_stays_consistent() {
    check(96, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 20, 200);
        let w1 = rng.gen_range_usize(1, 30);
        let w2 = rng.gen_range_usize(1, 30);
        let at_frac = rng.gen_range_f64(0.1, 0.9);
        let split = ((stream.len() as f64) * at_frac) as usize;
        let op = Sum::<i64>::new();
        let mut sd = SlickDequeInv::new(op, w1);
        for &v in &stream[..split] {
            sd.slide(v);
        }
        sd.resize(w2);
        // After w2 further slides the resize history has fully cycled out;
        // compare against a fresh window-w2 reference over the suffix.
        let mut reference = Naive::new(op, w2);
        for (i, &v) in stream[split..].iter().enumerate() {
            let got = sd.slide(v);
            let expect = reference.slide(v);
            if i + 1 >= w2 {
                assert_eq!(got, expect, "case {case} suffix slide {i}");
            }
        }
    });
}

#[test]
fn slickdeque_noninv_resize_stays_consistent() {
    check(96, |rng, case| {
        let stream = vec_i64(rng, -1000, 1000, 20, 200);
        let w1 = rng.gen_range_usize(1, 30);
        let w2 = rng.gen_range_usize(1, 30);
        let at_frac = rng.gen_range_f64(0.1, 0.9);
        let split = ((stream.len() as f64) * at_frac) as usize;
        let op = Max::<i64>::new();
        let mut sd = SlickDequeNonInv::new(op, w1);
        for &v in &stream[..split] {
            sd.slide(op.lift(&v));
        }
        sd.resize(w2);
        sd.check_invariants().unwrap();
        let mut reference = Naive::new(op, w2);
        for (i, &v) in stream[split..].iter().enumerate() {
            let got = sd.slide(op.lift(&v));
            let expect = reference.slide(op.lift(&v));
            sd.check_invariants().unwrap();
            if i + 1 >= w2 {
                assert_eq!(got, expect, "case {case} suffix slide {i}");
            }
        }
    });
}

#[test]
fn reorder_buffer_repairs_bounded_displacement() {
    check(96, |rng, case| {
        use slickdeque::stream::reorder::ReorderBuffer;
        let values = vec_i64(rng, -1000, 1000, 1, 150);
        let depth = rng.gen_range_usize(1, 8);
        // Shuffle locally: swap disjoint adjacent pairs (displacement 1).
        let n = values.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut i = 0;
        while i + 1 < n {
            if rng.gen_bool(0.5) {
                order.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
        let mut buf = ReorderBuffer::new(depth.max(2));
        let mut out = Vec::new();
        for &idx in &order {
            buf.push(idx as u64, values[idx] as f64).unwrap();
            while let Some(v) = buf.pop_ready() {
                out.push(v as i64);
            }
        }
        buf.flush();
        while let Some(v) = buf.pop_ready() {
            out.push(v as i64);
        }
        assert_eq!(out, values, "case {case}");
    });
}

// ----- time-based windows and CLI parsing --------------------------------

/// A random timestamped stream: 120 tuples with non-decreasing timestamps
/// separated by gaps in `[0, 50)`, plus 1–3 time ranges in `[1, 300)` ms.
fn random_time_stream(rng: &mut Rng) -> (Vec<(u64, i64)>, Vec<u64>) {
    let n = rng.gen_range_usize(1, 121);
    let mut ts = 0u64;
    let stream: Vec<(u64, i64)> = (0..n)
        .map(|_| {
            ts += rng.gen_below(50);
            (ts, rng.gen_range_i64(-500, 500))
        })
        .collect();
    let ranges: Vec<u64> = (0..rng.gen_range_usize(1, 4))
        .map(|_| rng.gen_range_u64(1, 300))
        .collect();
    (stream, ranges)
}

#[test]
fn time_multi_inv_matches_brute_force() {
    check(64, |rng, case| {
        let (stream, ranges) = random_time_stream(rng);
        let op = Sum::<i64>::new();
        let mut agg = MultiTimeSlickDequeInv::new(op, &ranges);
        let mut out = Vec::new();
        for (i, &(ts, v)) in stream.iter().enumerate() {
            agg.insert(ts, v, &mut out);
            for (k, &r) in agg.ranges_ms().iter().enumerate() {
                let expect: i64 = stream[..=i]
                    .iter()
                    .filter(|(t, _)| (*t as i128) > ts as i128 - r as i128)
                    .map(|(_, v)| v)
                    .sum();
                assert_eq!(out[k], expect, "case {case} tuple {i} range {r}");
            }
        }
    });
}

#[test]
fn time_multi_noninv_matches_brute_force() {
    check(64, |rng, case| {
        let (stream, ranges) = random_time_stream(rng);
        let op = Max::<i64>::new();
        let mut agg = MultiTimeSlickDequeNonInv::new(op, &ranges);
        let mut out = Vec::new();
        for (i, &(ts, v)) in stream.iter().enumerate() {
            agg.insert(ts, op.lift(&v), &mut out);
            for (k, &r) in agg.ranges_ms().iter().enumerate() {
                let expect = stream[..=i]
                    .iter()
                    .filter(|(t, _)| (*t as i128) > ts as i128 - r as i128)
                    .map(|(_, v)| *v)
                    .max();
                assert_eq!(out[k], expect, "case {case} tuple {i} range {r}");
            }
        }
    });
}

#[test]
fn cli_query_specs_round_trip() {
    check(64, |rng, case| {
        use slickdeque::cli::CliConfig;
        let n = rng.gen_range_usize(1, 6);
        let valid: Vec<(u64, u64)> = (0..n)
            .map(|_| {
                let r = rng.gen_range_u64(1, 10_000);
                let s = rng.gen_range_u64(1, 100);
                (r.max(s), s)
            })
            .collect();
        let spec_str = valid
            .iter()
            .map(|(r, s)| format!("{r}:{s}"))
            .collect::<Vec<_>>()
            .join(",");
        let args = format!("--op sum --queries {spec_str} --source stdin");
        let cfg = CliConfig::parse(args.split_whitespace().map(str::to_string)).unwrap();
        assert_eq!(cfg.queries.len(), valid.len(), "case {case}");
        for (q, (r, s)) in cfg.queries.iter().zip(&valid) {
            assert_eq!(q.range, *r, "case {case}");
            assert_eq!(q.slide, *s, "case {case}");
        }
    });
}
