//! Integration tests for the beyond-the-paper extensions, exercised
//! together through the public facade: dynamic resize, runtime ACQ
//! registration, out-of-order repair, time-based windows, the sparse
//! multi-query FlatFIT, and the platform CLI.

use slickdeque::prelude::*;
use slickdeque::stream::reorder::ReorderBuffer;

#[test]
fn dashboard_rescales_at_runtime() {
    // A monitoring session: start with a 1-minute max panel, the operator
    // adds a 10-second panel, then narrows the big one — all without
    // restarting the stream.
    let op = Max::<f64>::new();
    let mut acqs = MultiSlickDequeNonInv::with_ranges(op, &[6000]);
    let stream = energy_stream(30_000, 9, 0);
    let mut out = Vec::new();

    for &v in &stream[..10_000] {
        acqs.slide_multi(op.lift(&v), &mut out);
    }
    acqs.add_query(1000);
    assert_eq!(acqs.ranges(), &[6000, 1000]);

    // Validate both panels against a brute-force window from here on.
    for (i, &v) in stream[10_000..20_000].iter().enumerate() {
        acqs.slide_multi(op.lift(&v), &mut out);
        let upto = 10_000 + i + 1;
        let brute_long = stream[upto.saturating_sub(6000)..upto]
            .iter()
            .cloned()
            .reduce(f64::max);
        let brute_short = stream[upto.saturating_sub(1000)..upto]
            .iter()
            .cloned()
            .reduce(f64::max);
        assert_eq!(out, vec![brute_long, brute_short], "slide {i}");
    }

    acqs.remove_query(6000);
    acqs.slide_multi(op.lift(&stream[20_000]), &mut out);
    assert_eq!(out.len(), 1);
}

#[test]
fn single_query_windows_resize_mid_stream() {
    let stream = energy_stream(5000, 4, 1);
    let sum_op = Sum::<f64>::new();
    let mut sum = SlickDequeInv::new(sum_op, 256);
    let max_op = Max::<f64>::new();
    let mut max = SlickDequeNonInv::new(max_op, 256);
    for &v in &stream[..2000] {
        sum.slide(v);
        max.slide(max_op.lift(&v));
    }
    sum.resize(64);
    max.resize(64);
    for (i, &v) in stream[2000..3000].iter().enumerate() {
        let got_sum = sum.slide(v);
        let got_max = max.slide(max_op.lift(&v));
        let upto = 2000 + i + 1;
        let lo = upto - 64.min(upto);
        let brute_sum: f64 = stream[lo..upto].iter().sum();
        let brute_max = stream[lo..upto].iter().cloned().reduce(f64::max);
        assert!((got_sum - brute_sum).abs() < 1e-6 * brute_sum.abs().max(1.0));
        assert_eq!(got_max, brute_max);
    }
}

#[test]
fn out_of_order_sensor_feed_repaired_end_to_end() {
    // A DEBS-like feed whose network reorders within packets of 4: repair
    // with a depth-4 buffer, aggregate, compare with the in-order run.
    let clean = energy_stream(4000, 17, 2);
    let mut scrambled: Vec<(u64, f64)> = Vec::new();
    for (block_idx, block) in clean.chunks(4).enumerate() {
        let base = (block_idx * 4) as u64;
        // Rotate each block by one.
        for k in 0..block.len() {
            let j = (k + 1) % block.len();
            scrambled.push((base + j as u64, block[j]));
        }
    }

    let op = Mean::new();
    let mut reference = SlickDequeInv::new(op, 128);
    let expected: Vec<f64> = clean
        .iter()
        .map(|v| op.lower(&reference.slide(op.lift(v))))
        .collect();

    let mut buf = ReorderBuffer::new(4);
    let mut repaired = SlickDequeInv::new(op, 128);
    let mut got = Vec::new();
    for &(seq, v) in &scrambled {
        buf.push(seq, v).unwrap();
        while let Some(v) = buf.pop_ready() {
            got.push(op.lower(&repaired.slide(op.lift(&v))));
        }
    }
    buf.flush();
    while let Some(v) = buf.pop_ready() {
        got.push(op.lower(&repaired.slide(op.lift(&v))));
    }
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(&expected) {
        assert!((g - e).abs() < 1e-9, "{g} vs {e}");
    }
}

#[test]
fn time_windows_follow_wall_clock_not_tuple_count() {
    // Bursty arrivals: 10 tuples in one millisecond, then silence. A
    // 100 ms window must hold all of the burst, then drop it at once.
    let op = Sum::<f64>::new();
    let mut win = TimeSlickDequeInv::new(op, 100);
    for k in 0..10 {
        win.insert(k / 5, 1.0); // ts 0,0,0,0,0,1,1,1,1,1
    }
    assert_eq!(win.query(), 10.0);
    assert_eq!(win.advance_to(90), 10.0);
    // Window is (now − 100, now]: at now=100 the ts-0 burst is exactly
    // 100 ms old and falls out; ts-1 survives one more millisecond.
    assert_eq!(win.advance_to(100), 5.0);
    assert_eq!(win.advance_to(101), 0.0);

    let mop = Max::<f64>::new();
    let mut mwin = TimeSlickDequeNonInv::new(mop, 50);
    mwin.insert(0, mop.lift(&9.0));
    mwin.insert(40, mop.lift(&5.0));
    assert_eq!(mwin.query(), Some(9.0));
    assert_eq!(mwin.advance_to(60), Some(5.0));
}

#[test]
fn sparse_flatfit_serves_dashboard_ranges() {
    let ranges = [3600usize, 600, 60, 1];
    let stream = energy_stream(10_000, 23, 0);
    let op = Sum::<f64>::new();
    let mut sparse = MultiFlatFitSparse::with_ranges(op, &ranges);
    let mut naive = MultiNaive::with_ranges(op, &ranges);
    let (mut o1, mut o2) = (Vec::new(), Vec::new());
    for (i, &v) in stream.iter().enumerate() {
        sparse.slide_multi(v, &mut o1);
        naive.slide_multi(v, &mut o2);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "slide {i}");
        }
    }
}

#[test]
fn platform_cli_runs_the_paper_example() {
    use slickdeque::cli::{run, CliConfig};
    let cfg = CliConfig::parse(
        "--op max --queries 3:1,5:1 --source stdin --emit"
            .split_whitespace()
            .map(str::to_string),
    )
    .unwrap();
    // The stream of the paper's Example 3.
    let values = vec![6.0, 5.0, 0.0, 1.0, 3.0, 4.0, 2.0, 7.0];
    let mut out = Vec::new();
    let summaries = run(&cfg, Some(values), &mut out).unwrap();
    assert_eq!(summaries[0].answers, 8);
    assert_eq!(summaries[1].answers, 8);
    // Final answers at step 8 (Fig. 9): Q1 (r=3) max(4,2,7)=7, Q2 (r=5)
    // max(1,3,4,2,7)=7.
    assert_eq!(summaries[0].last_answer, "7.000000");
    assert_eq!(summaries[1].last_answer, "7.000000");
    let text = String::from_utf8(out).unwrap();
    // Per-step answers for query 0 (range 3), matching Fig. 9's trace.
    let q0: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("0\t"))
        .map(|l| &l[2..])
        .collect();
    assert_eq!(
        q0,
        vec![
            "6.000000", "6.000000", "6.000000", "5.000000", "3.000000", "4.000000", "4.000000",
            "7.000000"
        ]
    );
}
