//! Multi-query integration: all multi-ACQ aggregators agree with brute
//! force across range mixes and workloads, and their measured per-slide
//! operation counts land on the paper's Table 1 closed forms for the
//! max-multi-query environment.

use slickdeque::prelude::*;

fn brute_force_multi(stream: &[f64], ranges: &[usize], upto: usize) -> Vec<Vec<f64>> {
    // answers[slide][range_idx] = sum over that range (for Sum).
    (0..upto)
        .map(|i| {
            ranges
                .iter()
                .map(|&r| {
                    let lo = (i + 1).saturating_sub(r);
                    stream[lo..=i].iter().sum()
                })
                .collect()
        })
        .collect()
}

#[test]
fn sum_multi_aggregators_match_brute_force() {
    let ranges = [19usize, 16, 8, 5, 2, 1];
    let stream: Vec<f64> = Workload::Uniform
        .generate(300, 3)
        .iter()
        .map(|v| (v * 100.0).round())
        .collect();
    let expect = brute_force_multi(&stream, &ranges, stream.len());

    let op = Sum::<f64>::new();
    let mut naive = MultiNaive::with_ranges(op, &ranges);
    let mut fat = MultiFlatFat::with_ranges(op, &ranges);
    let mut bint = MultiBInt::with_ranges(op, &ranges);
    let mut fit = MultiFlatFit::with_ranges(op, &ranges);
    let mut inv = MultiSlickDequeInv::with_ranges(op, &ranges);
    let mut out = Vec::new();
    for (i, &v) in stream.iter().enumerate() {
        naive.slide_multi(v, &mut out);
        assert_eq!(out, expect[i], "naive slide {i}");
        fat.slide_multi(v, &mut out);
        assert_eq!(out, expect[i], "flatfat slide {i}");
        bint.slide_multi(v, &mut out);
        assert_eq!(out, expect[i], "bint slide {i}");
        fit.slide_multi(v, &mut out);
        assert_eq!(out, expect[i], "flatfit slide {i}");
        inv.slide_multi(v, &mut out);
        assert_eq!(out, expect[i], "slickdeque slide {i}");
    }
}

#[test]
fn max_multi_aggregators_match_brute_force() {
    let ranges = [23usize, 11, 7, 3, 1];
    for (wname, stream) in [
        ("debs", energy_stream(400, 31, 0)),
        ("descending", Workload::Descending.generate(400, 0)),
        (
            "sawtooth",
            Workload::Sawtooth { period: 9 }.generate(400, 0),
        ),
    ] {
        let op = Max::<f64>::new();
        let mut naive = MultiNaive::with_ranges(op, &ranges);
        let mut deque = MultiSlickDequeNonInv::with_ranges(op, &ranges);
        let mut fat = MultiFlatFat::with_ranges(op, &ranges);
        let (mut o1, mut o2, mut o3) = (Vec::new(), Vec::new(), Vec::new());
        for (i, &v) in stream.iter().enumerate() {
            naive.slide_multi(op.lift(&v), &mut o1);
            deque.slide_multi(op.lift(&v), &mut o2);
            fat.slide_multi(op.lift(&v), &mut o3);
            assert_eq!(o1, o2, "{wname} slide {i}");
            assert_eq!(o1, o3, "{wname} slide {i}");
        }
    }
}

/// Measure steady-state ops/slide for a multi-query aggregator in the
/// max-multi-query environment (ranges 1..=n).
fn multi_ops_per_slide<M, F>(make: F, n: usize) -> f64
where
    M: MultiFinalAggregator<CountingOp<Sum<i64>>>,
    F: FnOnce(CountingOp<Sum<i64>>, &[usize]) -> M,
{
    let ranges: Vec<usize> = (1..=n).collect();
    let counter = OpCounter::new();
    let op = CountingOp::new(Sum::<i64>::new(), counter.clone());
    let mut agg = make(op, &ranges);
    let mut out = Vec::new();
    for v in 0..(3 * n as i64) {
        agg.slide_multi(v, &mut out);
    }
    counter.reset();
    let slides = 50u64;
    for v in 0..slides as i64 {
        agg.slide_multi(v, &mut out);
    }
    counter.get() as f64 / slides as f64
}

#[test]
fn table1_max_multi_query_op_counts() {
    let n = 64usize;
    let nf = n as f64;

    // Naive: n²/2 − n/2.
    let naive = multi_ops_per_slide::<MultiNaive<_>, _>(MultiNaive::with_ranges, n);
    assert_eq!(naive, nf * nf / 2.0 - nf / 2.0, "naive");

    // FlatFIT (max-multi regime): exactly n − 1.
    let fit = multi_ops_per_slide::<MultiFlatFit<_>, _>(MultiFlatFit::with_ranges, n);
    assert_eq!(fit, nf - 1.0, "flatfit");

    // SlickDeque (Inv): exactly 2n.
    let inv = multi_ops_per_slide::<MultiSlickDequeInv<_>, _>(MultiSlickDequeInv::with_ranges, n);
    assert_eq!(inv, 2.0 * nf, "slickdeque inv");

    // FlatFAT: Θ(n·log n) — between n and n·log2(n).
    let fat = multi_ops_per_slide::<MultiFlatFat<_>, _>(MultiFlatFat::with_ranges, n);
    assert!(fat > nf && fat <= nf * nf.log2(), "flatfat: {fat}");

    // B-Int: same asymptotics as FlatFAT, slower by a constant.
    let bint = multi_ops_per_slide::<MultiBInt<_>, _>(MultiBInt::with_ranges, n);
    assert!(bint > nf && bint <= 2.0 * nf * nf.log2(), "bint: {bint}");
}

#[test]
fn slickdeque_noninv_multi_ops_depend_on_input() {
    let n = 64usize;
    let ranges: Vec<usize> = (1..=n).collect();

    let run = |stream: Vec<f64>| -> f64 {
        let counter = OpCounter::new();
        let op = CountingOp::new(Max::<f64>::new(), counter.clone());
        let mut agg = MultiSlickDequeNonInv::with_ranges(op.clone(), &ranges);
        let mut out = Vec::new();
        let (warm, measured) = stream.split_at(2 * n);
        for &v in warm {
            agg.slide_multi(op.lift(&v), &mut out);
        }
        counter.reset();
        for &v in measured {
            agg.slide_multi(op.lift(&v), &mut out);
        }
        counter.get() as f64 / measured.len() as f64
    };

    // Ascending input: singleton deque, constant ops.
    let asc = run(Workload::Ascending.generate(4 * n, 0));
    assert!(asc <= 2.0, "ascending: {asc}");
    // Uniform input: still < 2 amortized.
    let uni = run(Workload::Uniform.generate(4 * n, 3));
    assert!(uni < 2.0, "uniform: {uni}");
}

#[test]
fn multi_answers_are_descending_by_range() {
    let op = Sum::<i64>::new();
    let agg = MultiSlickDequeInv::with_ranges(op, &[3, 9, 1, 7]);
    assert_eq!(agg.ranges(), &[9, 7, 3, 1]);
    assert_eq!(agg.window(), 9);
}

#[test]
fn duplicate_ranges_share_answers() {
    // Two "queries" with the same range collapse to one answer slot, as
    // the paper notes ("Queries operating over the same range can share
    // results even if they have different slides").
    let op = Sum::<i64>::new();
    let agg = MultiSlickDequeInv::with_ranges(op, &[5, 5, 5, 2]);
    assert_eq!(agg.ranges(), &[5, 2]);
}

#[test]
fn large_max_multi_environment_smoke() {
    // Exp 2's setting at a small scale: n = 256 queries, every range.
    let n = 256usize;
    let ranges: Vec<usize> = (1..=n).collect();
    let stream = energy_stream(3 * n, 5, 0);

    let op = Sum::<f64>::new();
    let mut inv = MultiSlickDequeInv::with_ranges(op, &ranges);
    let mut fit = MultiFlatFit::with_ranges(op, &ranges);
    let (mut o1, mut o2) = (Vec::new(), Vec::new());
    for &v in &stream {
        inv.slide_multi(v, &mut o1);
        fit.slide_multi(v, &mut o2);
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
        }
    }

    let mop = Max::<f64>::new();
    let mut deque = MultiSlickDequeNonInv::with_ranges(mop, &ranges);
    let mut naive = MultiNaive::with_ranges(mop, &ranges);
    let (mut m1, mut m2) = (Vec::new(), Vec::new());
    for &v in &stream {
        deque.slide_multi(mop.lift(&v), &mut m1);
        naive.slide_multi(mop.lift(&v), &mut m2);
        assert_eq!(m1, m2);
    }
}
