//! Bulk-vs-scalar equivalence: the batched fast paths added to every
//! aggregator must be indistinguishable from per-tuple processing.
//!
//! Two contracts are checked:
//!
//! * `bulk_slide` (the engine/executor ingestion path) must be **bitwise**
//!   identical to calling `slide` per element, for every algorithm ×
//!   operation × window — floating point included.
//! * `bulk_insert` / `bulk_evict` / `advance` may reassociate combines, so
//!   they are checked against a sequential reference model under exact
//!   (integer) operations, through seeded randomized FIFO programs that
//!   include evict-more-than-batch and empty-window edges.

use slickdeque::prelude::*;
use std::collections::VecDeque;
use swag_data::prng::Xoshiro256StarStar;

/// Windows from the issue spec: degenerate, small odd, chunk-sized, large.
const WINDOWS: &[usize] = &[1, 7, 64, 1000];

fn stream(n: usize, seed: u64) -> Vec<f64> {
    Workload::Uniform.generate(n, seed)
}

/// Feed the same stream through `slide` and through chunked `bulk_slide`
/// and require bitwise-identical lowered answers.
fn check_bulk_slide<O, A>(op: O, window: usize, values: &[f64], chunk: usize)
where
    O: AggregateOp<Input = f64, Output = f64> + Clone,
    A: FinalAggregator<O>,
{
    let mut scalar = A::with_capacity(op.clone(), window);
    let expected: Vec<u64> = values
        .iter()
        .map(|v| op.lower(&scalar.slide(op.lift(v))).to_bits())
        .collect();

    let mut bulk = A::with_capacity(op.clone(), window);
    let mut got = Vec::with_capacity(values.len());
    let mut lifted = Vec::new();
    let mut out = Vec::new();
    for ch in values.chunks(chunk) {
        lifted.clear();
        lifted.extend(ch.iter().map(|v| op.lift(v)));
        bulk.bulk_slide(&lifted, &mut out);
        got.extend(out.drain(..).map(|p| op.lower(&p).to_bits()));
    }
    assert_eq!(
        got,
        expected,
        "{} w={window} chunk={chunk}: bulk_slide diverged from slide",
        A::NAME
    );
}

/// Chunk sizes straddle the window and the stream length; the large window
/// skips tiny chunks to keep the O(n)-per-slide baselines fast.
fn chunks_for(window: usize) -> &'static [usize] {
    if window >= 1000 {
        &[64, 513]
    } else {
        &[1, 7, 64, 513]
    }
}

macro_rules! check_all_invertible {
    ($op:expr, $w:expr, $vals:expr, $chunk:expr) => {{
        check_bulk_slide::<_, Naive<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, FlatFat<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, BInt<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, FlatFit<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, TwoStacks<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, Daba<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, SlickDequeInv<_>>($op, $w, $vals, $chunk);
    }};
}

macro_rules! check_all_selective {
    ($op:expr, $w:expr, $vals:expr, $chunk:expr) => {{
        check_bulk_slide::<_, Naive<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, FlatFat<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, BInt<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, FlatFit<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, TwoStacks<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, Daba<_>>($op, $w, $vals, $chunk);
        check_bulk_slide::<_, SlickDequeNonInv<_>>($op, $w, $vals, $chunk);
    }};
}

#[test]
fn bulk_slide_is_bitwise_identical_invertible_ops() {
    for &w in WINDOWS {
        let n = (3 * w).clamp(64, 2100);
        let values = stream(n, w as u64);
        for &chunk in chunks_for(w) {
            check_all_invertible!(Sum::<f64>::new(), w, &values, chunk);
            check_all_invertible!(Mean::new(), w, &values, chunk);
            check_all_invertible!(StdDev::new(), w, &values, chunk);
        }
    }
}

#[test]
fn bulk_slide_is_bitwise_identical_selective_ops() {
    for &w in WINDOWS {
        let n = (3 * w).clamp(64, 2100);
        let values = stream(n, 1000 + w as u64);
        for &chunk in chunks_for(w) {
            check_all_selective!(MaxF64::new(), w, &values, chunk);
            check_all_selective!(MinF64::new(), w, &values, chunk);
        }
    }
}

/// Drive an aggregator and a `VecDeque` reference model through the same
/// seeded random FIFO program — slides, bulk inserts past the window,
/// bulk evicts, and `advance` calls whose evictions exceed the incoming
/// batch — checking lengths each step and answers at every slide.
///
/// Integer ops only: `bulk_insert`/`advance` may reassociate combines,
/// which is invisible under exact arithmetic.
fn check_fifo_program<O, A>(op: O, window: usize, seed: u64, steps: usize)
where
    O: AggregateOp<Input = i64> + Clone,
    O::Partial: Copy + PartialEq + std::fmt::Debug,
    A: FinalAggregator<O>,
{
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut agg = A::with_capacity(op.clone(), window);
    let mut model: VecDeque<O::Partial> = VecDeque::new();
    let fold = |op: &O, m: &VecDeque<O::Partial>| {
        let mut it = m.iter();
        let first = *it.next().expect("fold of a non-empty window"); // check:allow test helper aborts the run on malformed input
        it.fold(first, |a, b| op.combine(&a, b))
    };
    let value = |rng: &mut Xoshiro256StarStar| rng.gen_range_u64(0, 1000) as i64 - 500;
    for step in 0..steps {
        let ctx = || format!("{} w={window} seed={seed} step={step}", A::NAME);
        match rng.gen_below(4) {
            0 => {
                let p = op.lift(&value(&mut rng));
                let got = agg.slide(p);
                if model.len() == window {
                    model.pop_front();
                }
                model.push_back(p);
                assert_eq!(got, fold(&op, &model), "{}", ctx());
            }
            1 => {
                // Batches up to twice the window exercise the replace-all
                // fast paths; size 0 exercises the no-op edge.
                let b = rng.gen_below(2 * window as u64 + 2) as usize;
                let batch: Vec<O::Partial> = (0..b).map(|_| op.lift(&value(&mut rng))).collect();
                agg.bulk_insert(&batch);
                for &p in &batch {
                    if model.len() == window {
                        model.pop_front();
                    }
                    model.push_back(p);
                }
            }
            2 => {
                let n = rng.gen_below(model.len() as u64 + 1) as usize;
                agg.bulk_evict(n);
                for _ in 0..n {
                    model.pop_front();
                }
            }
            _ => {
                // Evictions drawn independently of the batch size, so
                // evicting more than the batch brings in is routine here.
                let evictions = rng.gen_below(model.len() as u64 + 1) as usize;
                let b = rng.gen_below(window as u64 + 1) as usize;
                let batch: Vec<O::Partial> = (0..b).map(|_| op.lift(&value(&mut rng))).collect();
                agg.advance(&batch, evictions);
                for _ in 0..evictions {
                    model.pop_front();
                }
                for &p in &batch {
                    if model.len() == window {
                        model.pop_front();
                    }
                    model.push_back(p);
                }
            }
        }
        assert_eq!(agg.len(), model.len(), "{}", ctx());
    }
}

macro_rules! fifo_program_all {
    ($op:expr, $w:expr, $seed:expr) => {{
        check_fifo_program::<_, Naive<_>>($op, $w, $seed, 400);
        check_fifo_program::<_, FlatFat<_>>($op, $w, $seed, 400);
        check_fifo_program::<_, BInt<_>>($op, $w, $seed, 400);
        check_fifo_program::<_, FlatFit<_>>($op, $w, $seed, 400);
        check_fifo_program::<_, TwoStacks<_>>($op, $w, $seed, 400);
        check_fifo_program::<_, Daba<_>>($op, $w, $seed, 400);
    }};
}

#[test]
fn randomized_fifo_programs_match_reference_model_sum() {
    for (i, &w) in [1usize, 7, 64, 300].iter().enumerate() {
        fifo_program_all!(Sum::<i64>::new(), w, 0xB17_5EED + i as u64);
        check_fifo_program::<_, SlickDequeInv<_>>(Sum::<i64>::new(), w, 77 + i as u64, 400);
    }
}

#[test]
fn randomized_fifo_programs_match_reference_model_max() {
    for (i, &w) in [1usize, 7, 64, 300].iter().enumerate() {
        fifo_program_all!(Max::<i64>::new(), w, 0xFACE + i as u64);
        check_fifo_program::<_, SlickDequeNonInv<_>>(Max::<i64>::new(), w, 31 + i as u64, 400);
    }
}

/// The deterministic edges the issue calls out, on every algorithm.
fn check_edges<A: FinalAggregator<Sum<i64>>>() {
    let op = Sum::<i64>::new();
    let mut agg = A::with_capacity(op, 8);
    // Empty-window no-ops.
    agg.bulk_insert(&[]);
    agg.bulk_evict(0);
    agg.advance(&[], 0);
    assert_eq!(agg.len(), 0, "{}", A::NAME);
    assert_eq!(agg.slide(5), 5, "{}", A::NAME);
    // Evict back down to empty, then refill.
    agg.bulk_evict(1);
    assert_eq!(agg.len(), 0, "{}", A::NAME);
    assert_eq!(agg.slide(7), 7, "{}", A::NAME);
    // Evict-more-than-batch: 6 held, advance evicts 5 while adding 2.
    agg.bulk_insert(&[1, 2, 3, 4, 5]);
    assert_eq!(agg.len(), 6, "{}", A::NAME);
    agg.advance(&[10, 20], 5);
    assert_eq!(agg.len(), 3, "{}", A::NAME);
    assert_eq!(agg.slide(100), 5 + 10 + 20 + 100, "{}", A::NAME);
    // Batch twice the window: only the last 8 partials survive.
    let big: Vec<i64> = (1..=16).collect();
    agg.bulk_insert(&big);
    assert_eq!(agg.len(), 8, "{}", A::NAME);
    agg.bulk_evict(8);
    assert_eq!(agg.len(), 0, "{}", A::NAME);
    assert_eq!(agg.slide(9), 9, "{}", A::NAME);
}

#[test]
fn bulk_edges_on_every_algorithm() {
    check_edges::<Naive<_>>();
    check_edges::<FlatFat<_>>();
    check_edges::<BInt<_>>();
    check_edges::<FlatFit<_>>();
    check_edges::<TwoStacks<_>>();
    check_edges::<Daba<_>>();
    check_edges::<SlickDequeInv<_>>();
}

/// Same edges for the selective deque, which cannot run an invertible op.
#[test]
fn bulk_edges_on_selective_deque() {
    let op = Max::<i64>::new();
    let mut agg = SlickDequeNonInv::with_capacity(op, 8);
    agg.bulk_insert(&[]);
    agg.bulk_evict(0);
    agg.advance(&[], 0);
    assert_eq!(agg.len(), 0);
    assert_eq!(agg.slide(op.lift(&5)), op.lift(&5));
    agg.bulk_evict(1);
    assert_eq!(agg.len(), 0);
    // Evict-more-than-batch: 5 held, advance evicts 4 while adding 2.
    let batch: Vec<_> = [1i64, 9, 2, 3, 4].iter().map(|v| op.lift(v)).collect();
    agg.bulk_insert(&batch);
    assert_eq!(agg.len(), 5);
    agg.advance(&[op.lift(&7), op.lift(&6)], 4);
    assert_eq!(agg.len(), 3); // window is now [4, 7, 6]
    assert_eq!(agg.slide(op.lift(&0)), op.lift(&7));
    // Batch twice the window: only the last 8 partials survive.
    let big: Vec<_> = (1i64..=16).map(|v| op.lift(&v)).collect();
    agg.bulk_insert(&big);
    assert_eq!(agg.len(), 8);
    assert_eq!(agg.slide(op.lift(&0)), op.lift(&16));
}

/// `MultiSlickDequeInv::bulk_slide_multi` (range-major batching) must be
/// **bitwise** identical to per-tuple `slide_multi`, for every range and
/// any chunking of the stream — its per-range combine order is documented
/// to match the scalar path exactly.
#[test]
fn bulk_slide_multi_matches_scalar_on_multi_slickdeque_inv() {
    let ranges = [32usize, 17, 8, 1];
    let values = stream(4000, 0xB11D);
    let op = Sum::<f64>::new();

    let mut scalar = MultiSlickDequeInv::with_ranges(op, &ranges);
    let mut out = Vec::new();
    let mut expected = Vec::new();
    for v in &values {
        scalar.slide_multi(op.lift(v), &mut out);
        expected.extend(out.iter().map(|p| p.to_bits()));
    }

    for &chunk in &[1usize, 7, 32, 513] {
        let mut bulk = MultiSlickDequeInv::with_ranges(op, &ranges);
        let mut got = Vec::with_capacity(expected.len());
        let mut lifted = Vec::new();
        for ch in values.chunks(chunk) {
            lifted.clear();
            lifted.extend(ch.iter().map(|v| op.lift(v)));
            bulk.bulk_slide_multi(&lifted, &mut out);
            got.extend(out.drain(..).map(|p| p.to_bits()));
        }
        assert_eq!(
            got, expected,
            "chunk {chunk}: bulk_slide_multi diverged from slide_multi"
        );
    }
}

/// The sharded engine's per-key answer streams must not depend on the
/// channel batch size, which controls how tuples group into bulk calls.
#[test]
fn engine_answers_invariant_across_channel_batch_sizes() {
    let tuples: Vec<(Key, f64)> = {
        let mut rng = Xoshiro256StarStar::new(0xBA7C4);
        (0..6000)
            .map(|_| (rng.gen_below(23), rng.gen_range_f64(-100.0, 100.0)))
            .collect()
    };
    let run_with = |batch: usize| -> Vec<Vec<u64>> {
        let engine = ShardedEngine::new(EngineConfig {
            shards: 3,
            queue_capacity: 4,
            batch,
            retain_answers: true,
            // Real-float StdDev data: the Inv answer-refold is not exact.
            check_invariants: false,
            ..EngineConfig::default()
        });
        let mut source = KeyedVecSource::new(tuples.clone());
        let run = engine.run(&mut source, u64::MAX, |_| {
            KeyedWindows::<_, SlickDequeInv<_>>::new(StdDev::new(), 32)
        });
        let mut per_key: Vec<Vec<u64>> = vec![Vec::new(); 23];
        for (key, answer) in run.answers.into_iter().flatten() {
            per_key[key as usize].push(answer.to_bits());
        }
        per_key
    };
    let reference = run_with(1);
    assert_eq!(reference.iter().map(Vec::len).sum::<usize>(), 6000);
    for batch in [8usize, 64, 512] {
        assert_eq!(run_with(batch), reference, "channel batch {batch}");
    }
}
