//! Slice-kernel ↔ scalar equivalence: the batch kernels every
//! `AggregateOp` exposes (`fold_slice`, `prefix_scan_into`,
//! `suffix_scan_into`, `lift_slice_into`) must be indistinguishable from
//! the per-element loops they replace, and the algorithm hot paths built
//! on them must keep producing the answers a sequential reference model
//! computes.
//!
//! Three contracts:
//!
//! * **Scans are bitwise for every input.** `prefix_scan_into` /
//!   `suffix_scan_into` promise the exact combine order of the sequential
//!   loop — they feed cached per-node aggregates that `strict-invariants`
//!   refolds and compares exactly — so they are checked bitwise on
//!   arbitrary float streams, not just exact ones.
//! * **Folds are bitwise on exact inputs.** `fold_slice` may regroup (and
//!   reorder, for commutative ops), so it is checked against the scalar
//!   fold on integer-valued streams where every grouping yields the same
//!   bits; the NaN section checks `MaxF64`/`MinF64` on NaN-bearing
//!   streams, where the `total_cmp` total order makes the winner — and
//!   therefore the bits — independent of evaluation order.
//! * **Algorithms inherit the equivalence.** Every FIFO aggregator is
//!   driven through `bulk_insert` + `slide` across windows 1–1000 and
//!   compared bitwise against a `VecDeque` reference fold, on exact
//!   streams for the arithmetic ops and on NaN-bearing streams for the
//!   f64 extremes — pinning the `total_cmp` NaN policy end to end.

use slickdeque::prelude::*;
use std::collections::VecDeque;
use swag_data::prng::Xoshiro256StarStar;

/// Windows 1–1000: every tiny window, then a spread of chunk-straddling,
/// power-of-two, and odd sizes.
fn windows() -> Vec<usize> {
    (1..=20)
        .chain([31, 64, 100, 127, 255, 333, 512, 777, 1000])
        .collect()
}

/// Integer-valued stream in `[-31, 32]`: exact under any regrouping of
/// sums, sums of squares, and counts.
fn exact_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n)
        .map(|_| (rng.next_u64() % 64) as f64 - 31.0)
        .collect()
}

/// Powers of two with mixed signs: products stay exact powers of two
/// (exponent drift is far inside f64 range for these lengths).
fn pow2_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n)
        .map(|_| match rng.next_u64() % 4 {
            0 => 1.0,
            1 => -1.0,
            2 => 2.0,
            _ => 0.5,
        })
        .collect()
}

/// Floats with NaNs, signed zeros, and infinities sprinkled in: the
/// stream the `total_cmp` policy is pinned on.
fn nan_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n)
        .map(|_| match rng.next_u64() % 8 {
            0 => f64::NAN,
            1 => -f64::NAN,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => 0.0,
            5 => -0.0,
            _ => (rng.next_u64() % 1000) as f64 / 7.0 - 60.0,
        })
        .collect()
}

/// Arbitrary (non-exact) floats: scans must still be bitwise here.
fn rough_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n)
        .map(|_| (rng.next_u64() % 100_000) as f64 / 777.0 - 60.0)
        .collect()
}

/// Kernel-level equivalence for one op: scans bitwise on the slice as
/// given, folds vs the scalar loop (callers pick inputs where grouping
/// cannot change the bits), lifts vs the per-element map.
fn check_kernels<O>(op: &O, values: &[f64], fold_lens: &[usize], label: &str)
where
    O: AggregateOp<Input = f64>,
{
    let lifted: Vec<O::Partial> = values.iter().map(|v| op.lift(v)).collect();

    let mut out = Vec::new();
    op.lift_slice_into(values, &mut out);
    assert_eq!(out, lifted, "{label}: lift_slice_into");

    for &len in fold_lens {
        let slice = &lifted[..len.min(lifted.len())];
        let mut want = slice[0].clone();
        for p in &slice[1..] {
            want = op.combine(&want, p);
        }
        assert_eq!(
            op.fold_slice(&slice[0], &slice[1..]),
            want,
            "{label}: fold_slice len {len}"
        );

        op.prefix_scan_into(slice, &mut out);
        let mut want = Vec::with_capacity(slice.len());
        for p in slice {
            let next = match want.last() {
                Some(acc) => op.combine(acc, p),
                None => p.clone(),
            };
            want.push(next);
        }
        assert_eq!(out, want, "{label}: prefix_scan_into len {len}");

        op.suffix_scan_into(slice, &mut out);
        want.clear();
        for p in slice.iter().rev() {
            let next = match want.last() {
                Some(acc) => op.combine(p, acc),
                None => p.clone(),
            };
            want.push(next);
        }
        want.reverse();
        assert_eq!(out, want, "{label}: suffix_scan_into len {len}");
    }
}

#[test]
fn kernels_match_scalar_loops_for_every_op() {
    let lens = windows();
    let exact = exact_stream(1000, 0x5eed);
    check_kernels(&Sum::<f64>::new(), &exact, &lens, "sum");
    check_kernels(&SumSquares::new(), &exact, &lens, "sumsquares");
    check_kernels(&Count::<f64>::new(), &exact, &lens, "count");
    check_kernels(&Mean::new(), &exact, &lens, "mean");
    check_kernels(&Variance::new(), &exact, &lens, "variance");
    check_kernels(&StdDev::new(), &exact, &lens, "stddev");
    check_kernels(
        &Product::new(),
        &pow2_stream(1000, 0x5eed),
        &lens,
        "product",
    );
    // log(1) = 0 exactly, so the geometric mean's log-sum stays exact.
    check_kernels(&GeometricMean::new(), &vec![1.0; 1000], &lens, "geomean");
    // Selective ops: any regrouping returns the same winning element.
    check_kernels(&MaxF64::new(), &exact, &lens, "maxf64");
    check_kernels(&MinF64::new(), &exact, &lens, "minf64");
    check_kernels(&First::<f64>::new(), &exact, &lens, "first");
    check_kernels(&Last::<f64>::new(), &exact, &lens, "last");
}

/// Scans promise the sequential combine order bitwise on EVERY input, so
/// non-exact streams must round-trip too — unlike folds, there is no
/// "exact inputs" caveat to lean on.
#[test]
fn scans_are_bitwise_on_non_exact_streams() {
    let rough = rough_stream(1000, 0xf10a7);
    let lens = windows();
    for (label, op) in [("sum", Sum::<f64>::new())] {
        let lifted: Vec<f64> = rough.iter().map(|v| op.lift(v)).collect();
        let mut out = Vec::new();
        for &len in &lens {
            let slice = &lifted[..len];
            op.prefix_scan_into(slice, &mut out);
            let mut acc = slice[0];
            for (k, p) in slice.iter().enumerate().skip(1) {
                acc = op.combine(&acc, p);
                assert_eq!(
                    out[k].to_bits(),
                    acc.to_bits(),
                    "{label}: prefix bit drift at {k} of {len}"
                );
            }
            op.suffix_scan_into(slice, &mut out);
            let mut acc = slice[len - 1];
            for k in (0..len - 1).rev() {
                acc = op.combine(&slice[k], &acc);
                assert_eq!(
                    out[k].to_bits(),
                    acc.to_bits(),
                    "{label}: suffix bit drift at {k} of {len}"
                );
            }
        }
    }
}

/// `MaxF64`/`MinF64` kernels on NaN-bearing streams: the branchless
/// integer-key reductions must pick bitwise the same winner as the
/// sequential `total_cmp` loops, for every prefix length.
#[test]
fn f64_extreme_kernels_pin_total_cmp_on_nan_streams() {
    fn check<O>(op: &O, stream: &[f64], lens: &[usize], label: &str)
    where
        O: AggregateOp<Input = f64, Partial = f64>,
    {
        let mut out = Vec::new();
        for &len in lens {
            let slice = &stream[..len];
            let mut want = slice[0];
            for v in &slice[1..] {
                want = op.combine(&want, v);
            }
            assert_eq!(
                op.fold_slice(&slice[0], &slice[1..]).to_bits(),
                want.to_bits(),
                "{label}: NaN fold len {len}"
            );
            op.prefix_scan_into(slice, &mut out);
            let mut acc = slice[0];
            for (k, v) in slice.iter().enumerate() {
                if k > 0 {
                    acc = op.combine(&acc, v);
                }
                assert_eq!(
                    out[k].to_bits(),
                    acc.to_bits(),
                    "{label}: NaN prefix at {k} of {len}"
                );
            }
            op.suffix_scan_into(slice, &mut out);
            let mut acc = slice[len - 1];
            for k in (0..len).rev() {
                if k < len - 1 {
                    acc = op.combine(&slice[k], &acc);
                }
                assert_eq!(
                    out[k].to_bits(),
                    acc.to_bits(),
                    "{label}: NaN suffix at {k} of {len}"
                );
            }
        }
    }
    let stream = nan_stream(1000, 0xda7a);
    let lens = windows();
    check(&MaxF64::new(), &stream, &lens, "max");
    check(&MinF64::new(), &stream, &lens, "min");
}

/// Drive one aggregator through interleaved `bulk_insert` + `slide` and
/// compare every sampled answer bitwise against a sequential fold over a
/// `VecDeque` reference window.
fn check_algorithm<O, A>(op: O, window: usize, values: &[f64], label: &str)
where
    O: AggregateOp<Input = f64, Output = f64> + Clone,
    A: FinalAggregator<O>,
{
    let mut agg = A::with_capacity(op.clone(), window);
    let mut reference: VecDeque<O::Partial> = VecDeque::new();
    let batches = [1, 3, window / 2 + 1, window, 2 * window + 5];
    let push = |reference: &mut VecDeque<O::Partial>, p: O::Partial| {
        reference.push_back(p);
        if reference.len() > window {
            reference.pop_front();
        }
    };
    let mut i = 0;
    let mut round = 0;
    while i < values.len() {
        let b = batches[round % batches.len()].min(values.len() - i);
        round += 1;
        let lifted: Vec<O::Partial> = values[i..i + b].iter().map(|v| op.lift(v)).collect();
        agg.bulk_insert(&lifted);
        for p in &lifted {
            push(&mut reference, p.clone());
        }
        i += b;
        if i >= values.len() {
            break;
        }
        let p = op.lift(&values[i]);
        let got = agg.slide(p.clone());
        push(&mut reference, p);
        i += 1;
        let mut want = reference[0].clone();
        for q in reference.iter().skip(1) {
            want = op.combine(&want, q);
        }
        assert_eq!(
            op.lower(&got).to_bits(),
            op.lower(&want).to_bits(),
            "{label} w={window} tuple {i}: answer diverged from reference fold"
        );
    }
}

/// Exact streams through every generic FIFO algorithm × the arithmetic
/// ops, all windows.
#[test]
fn algorithms_match_reference_folds_on_exact_streams() {
    for &w in &windows() {
        let values = exact_stream(3 * w + 40, w as u64 ^ 0xabcd);
        macro_rules! all_algos {
            ($op:expr, $label:literal) => {
                check_algorithm::<_, Naive<_>>($op, w, &values, concat!($label, "/naive"));
                check_algorithm::<_, TwoStacks<_>>($op, w, &values, concat!($label, "/twostacks"));
                check_algorithm::<_, Daba<_>>($op, w, &values, concat!($label, "/daba"));
                check_algorithm::<_, FlatFat<_>>($op, w, &values, concat!($label, "/flatfat"));
                check_algorithm::<_, FlatFit<_>>($op, w, &values, concat!($label, "/flatfit"));
            };
        }
        all_algos!(Sum::<f64>::new(), "sum");
        all_algos!(Mean::new(), "mean");
        all_algos!(StdDev::new(), "stddev");
        check_algorithm::<_, SlickDequeInv<_>>(Sum::<f64>::new(), w, &values, "sum/inv");
        check_algorithm::<_, SlickDequeInv<_>>(Mean::new(), w, &values, "mean/inv");
        check_algorithm::<_, SlickDequeInv<_>>(StdDev::new(), w, &values, "stddev/inv");
    }
}

/// NaN-bearing streams through every algorithm that can run the f64
/// extremes — the `total_cmp` policy must survive the batched paths of
/// each one, SlickDeque (Non-Inv)'s dominated-suffix chunk scan
/// included.
#[test]
fn algorithms_pin_total_cmp_on_nan_streams() {
    for &w in &windows() {
        let values = nan_stream(3 * w + 40, w as u64 ^ 0x7e57);
        check_algorithm::<_, SlickDequeNonInv<_>>(MaxF64::new(), w, &values, "max/noninv");
        check_algorithm::<_, SlickDequeNonInv<_>>(MinF64::new(), w, &values, "min/noninv");
        check_algorithm::<_, Naive<_>>(MaxF64::new(), w, &values, "max/naive");
        check_algorithm::<_, TwoStacks<_>>(MaxF64::new(), w, &values, "max/twostacks");
        check_algorithm::<_, Daba<_>>(MaxF64::new(), w, &values, "max/daba");
        check_algorithm::<_, FlatFat<_>>(MaxF64::new(), w, &values, "max/flatfat");
        check_algorithm::<_, FlatFit<_>>(MaxF64::new(), w, &values, "max/flatfit");
    }
}
