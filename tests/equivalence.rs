//! Cross-algorithm equivalence: every final aggregator must produce
//! byte-identical answers to the Naive reference, for every operation,
//! window size, and workload shape — the foundation the paper's "all
//! algorithms compute exact answers" claim rests on.

use slickdeque::prelude::*;

/// Window sizes covering the paper's interesting region: powers of two,
/// their neighbours, and tiny windows where FlatFAT wins.
const WINDOWS: &[usize] = &[
    1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100, 127, 128,
];

fn workloads(n: usize) -> Vec<(String, Vec<f64>)> {
    vec![
        ("debs".into(), energy_stream(n, 11, 0)),
        ("uniform".into(), Workload::Uniform.generate(n, 5)),
        ("ascending".into(), Workload::Ascending.generate(n, 0)),
        ("descending".into(), Workload::Descending.generate(n, 0)),
        (
            "sawtooth".into(),
            Workload::Sawtooth { period: 13 }.generate(n, 0),
        ),
        ("constant".into(), Workload::Constant.generate(n, 0)),
        (
            "walk".into(),
            Workload::RandomWalk { sigma: 1.0 }.generate(n, 9),
        ),
    ]
}

#[test]
fn all_algorithms_agree_on_sum() {
    for &w in WINDOWS {
        let n = (6 * w).max(64);
        for (name, stream) in workloads(n) {
            let op = Sum::<f64>::new();
            let mut naive = Naive::new(op, w);
            let mut fat = FlatFat::new(op, w);
            let mut bint = BInt::new(op, w);
            let mut fit = FlatFit::new(op, w);
            let mut ts = TwoStacks::new(op, w);
            let mut daba = Daba::new(op, w);
            let mut inv = SlickDequeInv::new(op, w);
            for (i, &v) in stream.iter().enumerate() {
                let expect = naive.slide(v);
                let ctx = format!("w={w} workload={name} slide={i}");
                // Floating-point sums can differ in association order;
                // tree-based algorithms combine in different shapes, so
                // compare with a tight tolerance.
                let close = |got: f64| {
                    let tol = 1e-6 * expect.abs().max(1.0);
                    assert!((got - expect).abs() <= tol, "{ctx}: {got} vs {expect}");
                };
                close(fat.slide(v));
                close(bint.slide(v));
                close(fit.slide(v));
                close(ts.slide(v));
                close(daba.slide(v));
                close(inv.slide(v));
            }
        }
    }
}

#[test]
fn all_algorithms_agree_on_sum_exactly_over_integers() {
    // Integer sums must agree bitwise — association order is irrelevant.
    for &w in WINDOWS {
        let n = (6 * w).max(64);
        let stream: Vec<i64> = Workload::Uniform
            .generate(n, 21)
            .iter()
            .map(|v| (v * 1000.0) as i64 - 500)
            .collect();
        let op = Sum::<i64>::new();
        let mut naive = Naive::new(op, w);
        let mut fat = FlatFat::new(op, w);
        let mut bint = BInt::new(op, w);
        let mut fit = FlatFit::new(op, w);
        let mut ts = TwoStacks::new(op, w);
        let mut daba = Daba::new(op, w);
        let mut inv = SlickDequeInv::new(op, w);
        for &v in &stream {
            let expect = naive.slide(v);
            assert_eq!(fat.slide(v), expect, "flatfat w={w}");
            assert_eq!(bint.slide(v), expect, "bint w={w}");
            assert_eq!(fit.slide(v), expect, "flatfit w={w}");
            assert_eq!(ts.slide(v), expect, "twostacks w={w}");
            assert_eq!(daba.slide(v), expect, "daba w={w}");
            assert_eq!(inv.slide(v), expect, "slickdeque w={w}");
        }
    }
}

#[test]
fn all_algorithms_agree_on_max() {
    for &w in WINDOWS {
        let n = (6 * w).max(64);
        for (name, stream) in workloads(n) {
            let op = Max::<f64>::new();
            let mut naive = Naive::new(op, w);
            let mut fat = FlatFat::new(op, w);
            let mut bint = BInt::new(op, w);
            let mut fit = FlatFit::new(op, w);
            let mut ts = TwoStacks::new(op, w);
            let mut daba = Daba::new(op, w);
            let mut deque = SlickDequeNonInv::new(op, w);
            for (i, &v) in stream.iter().enumerate() {
                let p = op.lift(&v);
                let expect = naive.slide(p);
                let ctx = format!("w={w} workload={name} slide={i}");
                assert_eq!(fat.slide(p), expect, "flatfat {ctx}");
                assert_eq!(bint.slide(p), expect, "bint {ctx}");
                assert_eq!(fit.slide(p), expect, "flatfit {ctx}");
                assert_eq!(ts.slide(p), expect, "twostacks {ctx}");
                assert_eq!(daba.slide(p), expect, "daba {ctx}");
                assert_eq!(deque.slide(p), expect, "slickdeque {ctx}");
            }
        }
    }
}

#[test]
fn all_algorithms_agree_on_min() {
    let w = 37;
    let stream = energy_stream(500, 3, 1);
    let op = Min::<f64>::new();
    let mut naive = Naive::new(op, w);
    let mut ts = TwoStacks::new(op, w);
    let mut daba = Daba::new(op, w);
    let mut deque = SlickDequeNonInv::new(op, w);
    for &v in &stream {
        let p = op.lift(&v);
        let expect = naive.slide(p);
        assert_eq!(ts.slide(p), expect);
        assert_eq!(daba.slide(p), expect);
        assert_eq!(deque.slide(p), expect);
    }
}

#[test]
fn algebraic_ops_through_general_algorithms() {
    // Mean, Variance, MinMax flow through the order-preserving
    // algorithms unchanged.
    let w = 25;
    let stream = energy_stream(400, 17, 2);

    let mean = Mean::new();
    let mut naive = Naive::new(mean, w);
    let mut daba = Daba::new(mean, w);
    let mut inv = SlickDequeInv::new(mean, w);
    for &v in &stream {
        let p = mean.lift(&v);
        let expect = mean.lower(&naive.slide(p));
        assert!((mean.lower(&daba.slide(p)) - expect).abs() < 1e-9);
        assert!((mean.lower(&inv.slide(p)) - expect).abs() < 1e-9);
    }

    let mm = MinMax::<i64>::new();
    let int_stream: Vec<i64> = stream.iter().map(|v| (v * 100.0) as i64).collect();
    let mut naive = Naive::new(mm, w);
    let mut ts = TwoStacks::new(mm, w);
    let mut fat = FlatFat::new(mm, w);
    for &v in &int_stream {
        let p = mm.lift(&v);
        let expect = naive.slide(p);
        assert_eq!(ts.slide(p), expect);
        assert_eq!(fat.slide(p), expect);
    }
}

#[test]
fn string_alpha_max_agrees() {
    let words = [
        "pressure", "valve", "temp", "axis", "drill", "spindle", "belt", "motor", "gear", "sensor",
        "relay", "pump",
    ];
    let w = 4;
    let op = AlphaMax::new();
    let mut naive = Naive::new(op.clone(), w);
    let mut deque = SlickDequeNonInv::new(op.clone(), w);
    let mut daba = Daba::new(op.clone(), w);
    for chunk in words.iter().cycle().take(60) {
        let p = op.lift(&chunk.to_string());
        let expect = naive.slide(p.clone());
        assert_eq!(deque.slide(p.clone()), expect);
        assert_eq!(daba.slide(p), expect);
    }
}

#[test]
fn argmax_through_deque_and_naive() {
    // ArgMax of cosine — the paper's example of a non-trivial selective op.
    let w = 16;
    let op = ArgMax::<f64, i64>::new();
    let mut naive = Naive::new(op, w);
    let mut deque = SlickDequeNonInv::new(op, w);
    for i in 0..500i64 {
        let x = i as f64 * 0.37;
        let p = op.lift(&(x.cos(), i));
        let expect = naive.slide(p);
        assert_eq!(deque.slide(p), expect, "slide {i}");
    }
}

#[test]
fn product_with_zeros_all_invertible_paths() {
    let w = 9;
    let op = Product::new();
    let stream: Vec<f64> = (0..300)
        .map(|i| match i % 7 {
            0 => 0.0,
            k => k as f64 * 0.5,
        })
        .collect();
    let mut naive = Naive::new(op, w);
    let mut inv = SlickDequeInv::new(op, w);
    let mut daba = Daba::new(op, w);
    for &v in &stream {
        let p = op.lift(&v);
        let expect = op.lower(&naive.slide(p));
        let got_inv = op.lower(&inv.slide(p));
        let got_daba = op.lower(&daba.slide(p));
        assert!((got_inv - expect).abs() < 1e-6 * expect.abs().max(1.0));
        assert!((got_daba - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }
}

#[test]
fn insert_evict_interfaces_agree_under_bursts() {
    // TwoStacks and DABA expose genuine FIFO insert/evict; drive them
    // with bursty patterns against a VecDeque model.
    let mut ts = TwoStacks::new(Sum::<i64>::new(), 1 << 20);
    let mut daba = Daba::new(Sum::<i64>::new(), 1 << 20);
    let mut model: std::collections::VecDeque<i64> = Default::default();
    let mut x = 99u64;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) % 1000) as i64
    };
    for round in 0..200 {
        let inserts = (round * 7) % 23;
        let evicts = (round * 11) % 19;
        for _ in 0..inserts {
            let v = next();
            ts.insert(v);
            daba.insert(v);
            model.push_back(v);
        }
        for _ in 0..evicts.min(model.len()) {
            ts.evict();
            daba.evict();
            model.pop_front();
        }
        let expect: i64 = model.iter().sum();
        assert_eq!(ts.query(), expect, "round {round}");
        assert_eq!(daba.query(), expect, "round {round}");
    }
}
