//! End-to-end pipeline tests: shared plans (all three PATs, including
//! Cutty punctuation edges) executed over real sources, validated against
//! brute-force window computation on the raw tuple stream, plus dataset
//! persistence round-trips through the executor.

use slickdeque::prelude::*;

/// Brute-force answer for query `q` at report position `p` (1-based tuple
/// count): aggregate of tuples `(p − r, p]` clipped to the stream start.
fn brute_max(stream: &[f64], p: usize, r: usize) -> Option<f64> {
    let lo = p.saturating_sub(r);
    stream[lo..p].iter().cloned().reduce(f64::max)
}

fn brute_sum(stream: &[f64], p: usize, r: usize) -> f64 {
    let lo = p.saturating_sub(r);
    stream[lo..p].iter().sum()
}

/// Every (PAT, query-set) combination executed through the general
/// executor must equal brute force.
#[test]
fn general_executor_matches_brute_force_for_all_pats() {
    let query_sets: Vec<Vec<Query>> = vec![
        vec![Query::new(6, 2), Query::new(8, 4)], // paper Example 1
        vec![Query::new(7, 5)],                   // unaligned single
        vec![Query::new(5, 2), Query::new(9, 3)], // unaligned mix
        vec![Query::new(13, 5), Query::new(20, 10), Query::new(4, 2)],
        vec![Query::tumbling(6), Query::new(12, 3)],
    ];
    let stream = energy_stream(600, 23, 0);

    for queries in &query_sets {
        for pat in [Pat::Panes, Pat::Pairs, Pat::Cutty] {
            let plan = SharedPlan::build(queries, pat);
            let op = Max::<f64>::new();
            let mut exec = GeneralPlanExecutor::new(op, plan);
            let mut sink = CollectSink::new();
            let mut source = VecSource::new(stream.clone());
            exec.run(&mut source, 10_000, &mut sink);

            // Reconstruct expected report positions per query.
            for (qi, q) in queries.iter().enumerate() {
                let answers: Vec<Option<f64>> = sink.for_query(qi).into_iter().cloned().collect();
                for (k, got) in answers.iter().enumerate() {
                    let p = (k + 1) * q.slide as usize;
                    let expect = brute_max(&stream, p, q.range as usize);
                    assert_eq!(*got, expect, "pat={pat:?} {q} report #{k} at tuple {p}");
                }
            }
        }
    }
}

#[test]
fn shared_executor_matches_brute_force_for_cutting_pats() {
    let queries = vec![Query::new(6, 2), Query::new(8, 4)];
    let stream = energy_stream(400, 29, 1);
    for pat in [Pat::Panes, Pat::Pairs] {
        let plan = SharedPlan::build(&queries, pat);
        assert!(plan.all_edges_cut());
        let op = Sum::<f64>::new();
        let mut exec = SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan);
        let mut sink = CollectSink::new();
        exec.run(&mut VecSource::new(stream.clone()), 10_000, &mut sink);
        for (qi, q) in queries.iter().enumerate() {
            let answers: Vec<f64> = sink.for_query(qi).into_iter().cloned().collect();
            assert!(!answers.is_empty());
            for (k, got) in answers.iter().enumerate() {
                let p = (k + 1) * q.slide as usize;
                let expect = brute_sum(&stream, p, q.range as usize);
                assert!(
                    (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                    "pat={pat:?} {q} report #{k}: {got} vs {expect}"
                );
            }
        }
    }
}

#[test]
fn every_multi_aggregator_drives_the_shared_executor() {
    let queries = vec![Query::new(12, 2), Query::new(8, 4), Query::new(6, 2)];
    let plan = SharedPlan::build(&queries, Pat::Pairs);
    let stream = energy_stream(400, 31, 2);
    let op = Sum::<f64>::new();

    let run = |sink: &mut CollectSink<f64>, which: usize| {
        let mut src = VecSource::new(stream.clone());
        match which {
            0 => {
                SharedPlanExecutor::<_, MultiNaive<_>>::new(op, plan.clone())
                    .run(&mut src, 10_000, sink);
            }
            1 => {
                SharedPlanExecutor::<_, MultiFlatFat<_>>::new(op, plan.clone())
                    .run(&mut src, 10_000, sink);
            }
            2 => {
                SharedPlanExecutor::<_, MultiBInt<_>>::new(op, plan.clone())
                    .run(&mut src, 10_000, sink);
            }
            3 => {
                SharedPlanExecutor::<_, MultiFlatFit<_>>::new(op, plan.clone())
                    .run(&mut src, 10_000, sink);
            }
            _ => {
                SharedPlanExecutor::<_, MultiSlickDequeInv<_>>::new(op, plan.clone())
                    .run(&mut src, 10_000, sink);
            }
        }
    };

    let mut reference = CollectSink::new();
    run(&mut reference, 0);
    for which in 1..=4 {
        let mut sink = CollectSink::new();
        run(&mut sink, which);
        assert_eq!(sink.answers.len(), reference.answers.len());
        for (a, b) in sink.answers.iter().zip(&reference.answers) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-6 * b.1.abs().max(1.0));
        }
    }
}

#[test]
fn csv_round_trip_preserves_executor_results() {
    use slickdeque::data::csv;
    use slickdeque::data::generate;

    let events = generate(500, 77);
    let mut buf = Vec::new();
    csv::write_events(&events, &mut buf).unwrap();
    let replayed = csv::read_events(buf.as_slice()).unwrap();

    let direct: Vec<f64> = events.iter().map(|e| e.energy[0]).collect();
    let from_csv: Vec<f64> = replayed.iter().map(|e| e.energy[0]).collect();

    let op = Max::<f64>::new();
    let mut a = SlickDequeNonInv::new(op, 64);
    let mut b = SlickDequeNonInv::new(op, 64);
    for (x, y) in direct.iter().zip(&from_csv) {
        let ra = a.slide(op.lift(x));
        let rb = b.slide(op.lift(y));
        // CSV stores 6 decimal places; answers agree to that precision.
        match (ra, rb) {
            (Some(p), Some(q)) => assert!((p - q).abs() < 1e-5),
            (p, q) => assert_eq!(p, q),
        }
    }
}

#[test]
fn latency_instrumented_run_produces_sane_summary() {
    let op = Max::<f64>::new();
    let mut agg = SlickDequeNonInv::new(op, 1024);
    let mut src = VecSource::new(energy_stream(20_000, 3, 0));
    let mut sink = CountSink::default();
    let stats = run_single_query(&op, &mut agg, &mut src, 20_000, &mut sink, true);
    let lat = stats.latency.unwrap();
    // The paper's outlier policy drops the top 0.005% — exactly 1 of the
    // 20 000 samples.
    assert_eq!(lat.count, 19_999);
    assert!(lat.min <= lat.p25);
    assert!(lat.p25 <= lat.median);
    assert!(lat.median <= lat.p75);
    assert!(lat.p75 <= lat.max);
    assert!(stats.throughput.per_second() > 0.0);
    assert_eq!(sink.count, 20_000);
}

#[test]
fn heap_accounting_reflects_window_growth() {
    // MemoryFootprint should grow roughly linearly for Naive and stay
    // input-bounded for the deque.
    let op = Sum::<f64>::new();
    let small = Naive::new(op, 1 << 8);
    let large = Naive::new(op, 1 << 14);
    assert!(large.heap_bytes() > 32 * small.heap_bytes());

    let mop = Max::<f64>::new();
    let mut deque = SlickDequeNonInv::new(mop, 1 << 14);
    for v in Workload::Ascending.generate(1 << 15, 0) {
        deque.slide(mop.lift(&v));
    }
    // Ascending input keeps a single node: far below window-proportional.
    assert!(deque.heap_bytes() < large.heap_bytes() / 8);
}
